//! Criterion benchmarks over the paper's experiments (one representative
//! configuration per figure, smoke-scale datasets so `cargo bench` stays
//! fast). The full parameter sweeps live in the `figure*` runner binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ir_bench::{BenchArgs, BenchDataset, Scale};
use ir_core::{Algorithm, RegionConfig};
use ir_storage::BackendKind;

/// The storage backend under benchmark: `cargo bench -- --backend mmap`
/// (or env `IR_BENCH_BACKEND`) swaps it, exactly like the figure runners.
/// The vendored criterion ignores unknown CLI arguments, so the shared
/// parser sees the flag untouched.
fn backend() -> BackendKind {
    BenchArgs::parse().backend
}

fn bench_figure10_wsj_qlen(c: &mut Criterion) {
    let (engine, workload) = BenchDataset::Wsj
        .prepare_engine(Scale::Smoke, 4, 10, 3, 1, backend())
        .unwrap();
    let mut group = c.benchmark_group("figure10_wsj_qlen4_k10");
    group.sample_size(10);
    for algorithm in Algorithm::ALL {
        group.bench_function(BenchmarkId::from_parameter(algorithm), |b| {
            b.iter(|| {
                for query in workload.iter() {
                    let _ = std::hint::black_box(
                        engine
                            .query_with(query, RegionConfig::flat(algorithm))
                            .unwrap(),
                    );
                }
            })
        });
    }
    group.finish();
}

fn bench_figure11_st_qlen(c: &mut Criterion) {
    let (engine, workload) = BenchDataset::St
        .prepare_engine(Scale::Smoke, 4, 10, 3, 1, backend())
        .unwrap();
    let mut group = c.benchmark_group("figure11_st_qlen4_k10");
    group.sample_size(10);
    for algorithm in Algorithm::ALL {
        group.bench_function(BenchmarkId::from_parameter(algorithm), |b| {
            b.iter(|| {
                for query in workload.iter() {
                    let _ = std::hint::black_box(
                        engine
                            .query_with(query, RegionConfig::flat(algorithm))
                            .unwrap(),
                    );
                }
            })
        });
    }
    group.finish();
}

fn bench_figure12_kb_qlen(c: &mut Criterion) {
    let (engine, workload) = BenchDataset::Kb
        .prepare_engine(Scale::Smoke, 6, 10, 3, 1, backend())
        .unwrap();
    let mut group = c.benchmark_group("figure12_kb_qlen6_k10");
    group.sample_size(10);
    for algorithm in Algorithm::ALL {
        group.bench_function(BenchmarkId::from_parameter(algorithm), |b| {
            b.iter(|| {
                for query in workload.iter() {
                    let _ = std::hint::black_box(
                        engine
                            .query_with(query, RegionConfig::flat(algorithm))
                            .unwrap(),
                    );
                }
            })
        });
    }
    group.finish();
}

fn bench_figure13_vary_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure13_wsj_vary_k");
    group.sample_size(10);
    for k in [10usize, 40] {
        let (engine, workload) = BenchDataset::Wsj
            .prepare_engine(Scale::Smoke, 4, k, 3, 1, backend())
            .unwrap();
        for algorithm in [Algorithm::Scan, Algorithm::Cpt] {
            group.bench_function(BenchmarkId::new(algorithm.to_string(), k), |b| {
                b.iter(|| {
                    for query in workload.iter() {
                        let _ = std::hint::black_box(
                            engine
                                .query_with(query, RegionConfig::flat(algorithm))
                                .unwrap(),
                        );
                    }
                })
            });
        }
    }
    group.finish();
}

fn bench_figure14_vary_phi(c: &mut Criterion) {
    let (engine, workload) = BenchDataset::Wsj
        .prepare_engine(Scale::Smoke, 4, 10, 2, 1, backend())
        .unwrap();
    let mut group = c.benchmark_group("figure14_wsj_vary_phi");
    group.sample_size(10);
    for phi in [0usize, 5, 10] {
        for algorithm in [Algorithm::Scan, Algorithm::Cpt] {
            group.bench_function(BenchmarkId::new(algorithm.to_string(), phi), |b| {
                b.iter(|| {
                    for query in workload.iter() {
                        let _ = std::hint::black_box(
                            engine
                                .query_with(query, RegionConfig::with_phi(algorithm, phi))
                                .unwrap(),
                        );
                    }
                })
            });
        }
    }
    group.finish();
}

fn bench_figure15_oneoff_vs_iterative(c: &mut Criterion) {
    let (engine, workload) = BenchDataset::Wsj
        .prepare_engine(Scale::Smoke, 3, 10, 1, 1, backend())
        .unwrap();
    let mut group = c.benchmark_group("figure15_oneoff_vs_iterative_phi3");
    group.sample_size(10);
    group.bench_function("CPT-one-off", |b| {
        b.iter(|| {
            for query in workload.iter() {
                let _ = std::hint::black_box(
                    engine
                        .query_with(query, RegionConfig::with_phi(Algorithm::Cpt, 3))
                        .unwrap(),
                );
            }
        })
    });
    group.bench_function("CPT-iterative", |b| {
        b.iter(|| {
            for query in workload.iter() {
                let _ = std::hint::black_box(
                    ir_core::iterative::compute_iterative(engine.index(), query, Algorithm::Cpt, 3)
                        .unwrap(),
                );
            }
        })
    });
    group.finish();
}

fn bench_figure16_composition_only(c: &mut Criterion) {
    let (engine, workload) = BenchDataset::Wsj
        .prepare_engine(Scale::Smoke, 4, 10, 3, 1, backend())
        .unwrap();
    let mut group = c.benchmark_group("figure16_wsj_composition_only");
    group.sample_size(10);
    for algorithm in Algorithm::ALL {
        group.bench_function(BenchmarkId::from_parameter(algorithm), |b| {
            b.iter(|| {
                for query in workload.iter() {
                    let _ = std::hint::black_box(
                        engine
                            .query_with(query, RegionConfig::flat(algorithm).composition_only())
                            .unwrap(),
                    );
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    figures,
    bench_figure10_wsj_qlen,
    bench_figure11_st_qlen,
    bench_figure12_kb_qlen,
    bench_figure13_vary_k,
    bench_figure14_vary_phi,
    bench_figure15_oneoff_vs_iterative,
    bench_figure16_composition_only,
);
criterion_main!(figures);
