//! Component micro-benchmarks: the substrates underneath the region
//! algorithms (TA, the thresholded Phase 2, the kinetic sweep, index build).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ir_bench::{BenchDataset, Scale};
use ir_core::lemma::ScoreCoord;
use ir_core::threshold::{exhaustive_phase2, threshold_phase2, BoundState, CandView};
use ir_geometry::{sweep_topk, Line};
use ir_topk::TaRun;
use ir_types::TupleId;

fn bench_ta(c: &mut Criterion) {
    let mut group = c.benchmark_group("threshold_algorithm");
    group.sample_size(10);
    for dataset in [BenchDataset::Wsj, BenchDataset::St] {
        let (index, workload) = dataset.prepare(Scale::Smoke, 4, 10, 3).unwrap();
        group.bench_function(BenchmarkId::from_parameter(dataset.name()), |b| {
            b.iter(|| {
                for query in workload.iter() {
                    std::hint::black_box(TaRun::execute_default(&index, query).unwrap());
                }
            })
        });
    }
    group.finish();
}

fn synthetic_candidates(n: usize) -> Vec<CandView> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|i| CandView {
            id: TupleId(i as u32),
            score: 0.7 * next(),
            coord: next(),
        })
        .collect()
}

fn bench_phase2(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase2");
    let dk = ScoreCoord::new(0.75, 0.5);
    for n in [100usize, 1_000, 10_000] {
        let cands = synthetic_candidates(n);
        group.bench_function(BenchmarkId::new("exhaustive", n), |b| {
            b.iter(|| {
                let mut bounds = BoundState::widest(0.5);
                exhaustive_phase2(dk, &cands, &mut bounds, |id| Ok(cands[id.0 as usize].coord))
                    .unwrap();
                std::hint::black_box(bounds.upper)
            })
        });
        group.bench_function(BenchmarkId::new("thresholded", n), |b| {
            b.iter(|| {
                let mut bounds = BoundState::widest(0.5);
                threshold_phase2(dk, &cands, &mut bounds, |id| Ok(cands[id.0 as usize].coord))
                    .unwrap();
                std::hint::black_box(bounds.upper)
            })
        });
    }
    group.finish();
}

fn bench_kinetic_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("kinetic_sweep");
    for (k, candidates) in [(10usize, 100usize), (40, 500)] {
        let result: Vec<Line> = (0..k)
            .map(|i| Line::new(i as u64, 0.9 - 0.01 * i as f64, 0.3 + 0.01 * i as f64))
            .collect();
        let outside: Vec<Line> = (0..candidates)
            .map(|i| {
                Line::new(
                    (k + i) as u64,
                    0.3 - 0.0002 * i as f64,
                    (i % 97) as f64 / 97.0,
                )
            })
            .collect();
        group.bench_function(
            BenchmarkId::new("phi_20", format!("k{k}_c{candidates}")),
            |b| {
                b.iter(|| {
                    std::hint::black_box(sweep_topk(result.clone(), outside.clone(), 0.0, 0.5, 21))
                })
            },
        );
    }
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    let dataset = BenchDataset::Wsj.generate(Scale::Smoke);
    group.bench_function("wsj_smoke", |b| {
        b.iter(|| std::hint::black_box(ir_storage::TopKIndex::build_in_memory(&dataset).unwrap()))
    });
    group.finish();
}

criterion_group!(
    components,
    bench_ta,
    bench_phase2,
    bench_kinetic_sweep,
    bench_index_build
);
criterion_main!(components);
