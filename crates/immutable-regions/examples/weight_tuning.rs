//! Algorithm comparison on a generated workload — a miniature of the
//! paper's Figure 10 experiment, runnable in seconds.
//!
//! Generates a WSJ-like corpus and an ST-like correlated dataset, runs the
//! same query workload with Scan, Thres, Prune and CPT, and prints the
//! average number of evaluated candidates per query dimension plus the I/O
//! performed. On the sparse corpus pruning does most of the work; on the
//! correlated data thresholding does — and CPT wins on both, which is the
//! paper's headline claim.
//!
//! This is the retained *low-level* example: it drives the borrow-based
//! [`RegionComputation`] API directly (per-query cold starts, explicit
//! index lifetime) for library users who manage storage themselves. The
//! other examples go through the owned [`IrEngine`] façade.
//!
//! Run with: `cargo run --release --example weight_tuning`

use immutable_regions::prelude::*;

fn main() -> IrResult<()> {
    let corpus = TextCorpusGenerator::new(TextCorpusConfig {
        num_docs: 4_000,
        vocabulary: 3_000,
        mean_distinct_terms: 25.0,
        zipf_exponent: 1.0,
    })
    .generate_corpus(11);
    let correlated = CorrelatedGenerator::new(CorrelatedConfig {
        cardinality: 4_000,
        dimensionality: 12,
        correlation: 0.5,
    })
    .generate_dataset(11);

    for (name, dataset, min_postings) in [
        ("WSJ-like (sparse text)", &corpus, 40),
        ("ST (correlated)", &correlated, 40),
    ] {
        println!("=== {name} ===");
        let index = TopKIndex::build_in_memory(dataset)?;
        let workload = QueryWorkload::generate(
            dataset,
            &WorkloadConfig {
                qlen: 4,
                k: 10,
                num_queries: 10,
                min_postings,
                ..Default::default()
            },
            3,
        )?;

        println!(
            "{:<8} {:>22} {:>18} {:>14}",
            "method", "evaluated cands/dim", "logical reads", "cpu (ms)"
        );
        for algorithm in Algorithm::ALL {
            let mut evaluated = 0.0;
            let mut reads = 0u64;
            let mut cpu_ms = 0.0;
            for query in workload.iter() {
                index.cold_start();
                let mut computation =
                    RegionComputation::new(&index, query, RegionConfig::flat(algorithm))?;
                let report = computation.compute()?;
                evaluated += report.stats.evaluated_per_dim_avg();
                reads += report.stats.io.logical_reads;
                cpu_ms += report.stats.cpu_time.as_secs_f64() * 1e3;
            }
            let n = workload.len() as f64;
            println!(
                "{:<8} {:>22.1} {:>18.0} {:>14.2}",
                algorithm,
                evaluated / n,
                reads as f64 / n,
                cpu_ms / n
            );
        }
        println!();
    }
    Ok(())
}
