//! Iterative query refinement over a document corpus (the paper's first
//! motivating application, Section 1).
//!
//! A WSJ-like TF-IDF corpus is generated, a multi-term query is issued, and
//! the immutable regions with `φ = 2` show the user exactly how far each
//! term weight must move before the top-10 document list changes — once,
//! twice — without re-running the query.
//!
//! Run with: `cargo run --release --example document_retrieval`

use immutable_regions::prelude::*;
use ir_datagen::queries::DimSelection;

fn main() -> EngineResult<()> {
    // A scaled-down WSJ-like corpus (use TextCorpusConfig::full_scale() for
    // the paper's cardinalities).
    let corpus_config = TextCorpusConfig {
        num_docs: 5_000,
        vocabulary: 4_000,
        mean_distinct_terms: 30.0,
        zipf_exponent: 1.0,
    };
    println!(
        "generating a {}-document corpus over {} terms ...",
        corpus_config.num_docs, corpus_config.vocabulary
    );
    let corpus = TextCorpusGenerator::new(corpus_config).generate_corpus(42);
    let stats = corpus.stats();
    println!(
        "  {} documents, avg {:.1} distinct terms/document",
        stats.cardinality, stats.avg_nnz_per_tuple
    );

    // A "web search"-style query: four popularity-biased terms, top-10.
    let workload_config = WorkloadConfig {
        qlen: 4,
        k: 10,
        num_queries: 1,
        min_postings: 50,
        max_postings: usize::MAX,
        selection: DimSelection::PopularityBiased,
        equal_weights: false,
    };
    let workload = QueryWorkload::generate(&corpus, &workload_config, 7)?;
    let query = workload.queries()[0].clone();
    println!("\nquery terms and weights:");
    for (dim, weight) in query.dims() {
        println!("  term {:>6}  weight {:.3}", dim.0, weight);
    }

    // The engine owns the index built over the corpus; φ = 2 reports the
    // two subsequent regions on each side of every term weight.
    let engine = IrEngine::builder()
        .dataset(corpus)
        .config(RegionConfig::with_phi(Algorithm::Cpt, 2))
        .build()?;
    let mut computation = engine.computation(&query)?;
    let report = computation.compute()?;

    println!("\ntop-10 documents: {:?}", computation.result().ids());
    println!("\nper-term refinement map (deviations relative to the current weight):");
    for dim in &report.dims {
        println!(
            "  term {:>6}: result unchanged for delta in ({:+.4}, {:+.4})",
            dim.dim.0, dim.immutable.lo, dim.immutable.hi
        );
        for (i, region) in dim.regions.iter().enumerate() {
            if i == dim.current_region {
                continue;
            }
            println!(
                "        after ({:+.4}, {:+.4}) the top-10 becomes {:?} ...",
                region.delta_lo,
                region.delta_hi,
                &region.result[..region.result.len().min(3)]
            );
        }
    }

    println!(
        "\ncomputed with {} candidate evaluations over {} initial candidates ({} discovered by the resumed scan)",
        report.stats.evaluated_candidates,
        report.stats.initial_candidates,
        report.stats.phase3_tuples
    );
    Ok(())
}
