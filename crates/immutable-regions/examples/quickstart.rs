//! Quickstart: the paper's running example (Figure 1) served by [`IrEngine`].
//!
//! Builds the four-tuple dataset, runs the top-2 query `q = <0.8, 0.5>`, and
//! prints the immutable region of each query weight together with the result
//! that takes over just past each boundary — the information a slide-bar
//! interface for interactive weight tuning would display. The engine then
//! serves a small batch and a subscription, the two other call styles.
//!
//! Run with: `cargo run --example quickstart`

use immutable_regions::prelude::*;

fn main() -> EngineResult<()> {
    // One owned engine holds the index and warm buffer pool; handles are
    // Send + Sync + Clone with no lifetimes. CPT with φ = 1: besides the
    // immutable region, also report the next region (and its result) on
    // each side of every weight.
    let engine = IrEngine::builder()
        .dataset(Dataset::running_example()) // Figure 1: d1..d4, 2 dims
        .config(RegionConfig::with_phi(Algorithm::Cpt, 1))
        .threads(2)
        .build()?;
    let query = QueryVector::running_example(); // weights <0.8, 0.5>, k = 2

    let mut computation = engine.computation(&query)?;
    let result = computation.result();
    let report = computation.compute()?;

    println!("top-{} result: {:?}", query.k(), result.ids());
    println!();

    for dim in report.dims.iter() {
        println!(
            "weight q{} = {:.2}  ->  immutable region ({:+.4}, {:+.4})  i.e. q{} in [{:.4}, {:.4}]",
            dim.dim.0 + 1,
            dim.weight,
            dim.immutable.lo,
            dim.immutable.hi,
            dim.dim.0 + 1,
            dim.absolute_immutable().lo,
            dim.absolute_immutable().hi,
        );
        for region in &dim.regions {
            let marker = if region.contains(0.0) { "*" } else { " " };
            println!(
                "   {marker} delta in ({:+.4}, {:+.4})  result = {:?}",
                region.delta_lo, region.delta_hi, region.result
            );
        }
        if let Some(boundary) = &dim.upper_boundary {
            println!(
                "     raising q{} past {:+.4} causes {:?}",
                dim.dim.0 + 1,
                boundary.delta,
                boundary.perturbation
            );
        }
        if let Some(boundary) = &dim.lower_boundary {
            println!(
                "     lowering q{} past {:+.4} causes {:?}",
                dim.dim.0 + 1,
                boundary.delta,
                boundary.perturbation
            );
        }
        println!();
    }

    println!(
        "cost: {} candidates evaluated, {} logical page reads",
        report.stats.evaluated_candidates, report.stats.io.logical_reads
    );

    // Serving many queries: the engine fans a whole batch out over its
    // worker pool sharing the same warm buffer pool. The reports come back
    // in query order with identical regions for every worker count — here
    // the two-worker engine must agree with a sequential clone.
    let batch: Vec<QueryVector> = (0..4).map(|_| query.clone()).collect();
    let sequential = engine.with_threads(1).query_batch(&batch)?;
    let parallel = engine.query_batch(&batch)?;
    assert!(sequential
        .iter()
        .zip(&parallel)
        .all(|(a, b)| a.dims == b.dims));
    println!(
        "batch of {} queries over {} workers: identical regions, {} logical reads total",
        batch.len(),
        engine.threads(),
        parallel
            .iter()
            .map(|r| r.stats.io.logical_reads + r.stats.topk_io.logical_reads)
            .sum::<u64>()
    );

    // The subscribed-query loop: weight drift inside the reported region is
    // answered from the cached report (no I/O); drift outside triggers
    // exactly one recompute and re-anchors the subscription.
    let mut subscription = engine.subscribe(query.clone())?;
    for delta in [0.02, 0.05, 0.08, 0.15] {
        let drifted = query.with_weight_shift(DimId(0), delta)?;
        let recomputed = subscription.update(&drifted)?;
        println!(
            "drift q1 by {delta:+.2}: {}  result {:?}",
            if recomputed {
                "region exit -> recomputed"
            } else {
                "inside region -> cached"
            },
            subscription.result().ids()
        );
    }
    println!(
        "subscription served {} drifts from cache, recomputed {}",
        subscription.cache_hits(),
        subscription.refreshes()
    );
    Ok(())
}
