//! Quickstart: the paper's running example (Figure 1).
//!
//! Builds the four-tuple dataset, runs the top-2 query `q = <0.8, 0.5>`, and
//! prints the immutable region of each query weight together with the result
//! that takes over just past each boundary — the information a slide-bar
//! interface for interactive weight tuning would display.
//!
//! Run with: `cargo run --example quickstart`

use immutable_regions::prelude::*;

fn main() -> IrResult<()> {
    // Dataset of Figure 1: d1..d4 in two dimensions (ids are zero-based).
    let dataset = Dataset::running_example();
    let index = TopKIndex::build_in_memory(&dataset)?;
    let query = QueryVector::running_example(); // weights <0.8, 0.5>, k = 2

    // CPT with φ = 1: besides the immutable region, also report the next
    // region (and its result) on each side of every weight.
    let config = RegionConfig::with_phi(Algorithm::Cpt, 1);
    let mut computation = RegionComputation::new(&index, &query, config)?;
    let report = computation.compute()?;

    println!("top-{} result: {:?}", query.k(), computation.result().ids());
    println!();

    for dim in report.dims.iter() {
        println!(
            "weight q{} = {:.2}  ->  immutable region ({:+.4}, {:+.4})  i.e. q{} in [{:.4}, {:.4}]",
            dim.dim.0 + 1,
            dim.weight,
            dim.immutable.lo,
            dim.immutable.hi,
            dim.dim.0 + 1,
            dim.absolute_immutable().lo,
            dim.absolute_immutable().hi,
        );
        for region in &dim.regions {
            let marker = if region.contains(0.0) { "*" } else { " " };
            println!(
                "   {marker} delta in ({:+.4}, {:+.4})  result = {:?}",
                region.delta_lo, region.delta_hi, region.result
            );
        }
        if let Some(boundary) = &dim.upper_boundary {
            println!(
                "     raising q{} past {:+.4} causes {:?}",
                dim.dim.0 + 1,
                boundary.delta,
                boundary.perturbation
            );
        }
        if let Some(boundary) = &dim.lower_boundary {
            println!(
                "     lowering q{} past {:+.4} causes {:?}",
                dim.dim.0 + 1,
                boundary.delta,
                boundary.perturbation
            );
        }
        println!();
    }

    println!(
        "cost: {} candidates evaluated, {} logical page reads",
        report.stats.evaluated_candidates, report.stats.io.logical_reads
    );

    // Serving many queries: BatchRegionComputation fans a whole batch out
    // over a worker pool sharing the same warm buffer pool. The reports come
    // back in query order with identical regions for every worker count —
    // here the two-worker run must agree with the sequential one.
    let batch: Vec<QueryVector> = (0..4).map(|_| query.clone()).collect();
    let sequential = BatchRegionComputation::new(&index, config).run(&batch)?;
    let parallel = BatchRegionComputation::new(&index, config)
        .with_threads(2)
        .run(&batch)?;
    assert!(sequential
        .iter()
        .zip(&parallel)
        .all(|(a, b)| a.dims == b.dims));
    println!(
        "batch of {} queries over 2 workers: identical regions, {} logical reads total",
        batch.len(),
        parallel
            .iter()
            .map(|r| r.stats.io.logical_reads + r.stats.topk_io.logical_reads)
            .sum::<u64>()
    );
    Ok(())
}
