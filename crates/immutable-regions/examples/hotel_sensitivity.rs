//! Sensitivity analysis for multi-criteria decision making (the paper's
//! second motivating application, Section 1).
//!
//! A small hotel-booking scenario: each hotel is rated on price value,
//! cleanliness, location and service. The user weights the criteria, gets a
//! top-5 shortlist, and the immutable regions tell her which criterion the
//! recommendation is most sensitive to — a narrow region means a small
//! change of mind would alter the shortlist.
//!
//! Run with: `cargo run --example hotel_sensitivity`

use immutable_regions::prelude::*;

const CRITERIA: [&str; 4] = ["price value", "cleanliness", "location", "service"];
const HOTELS: [(&str, [f64; 4]); 12] = [
    ("Harbour View", [0.82, 0.91, 0.95, 0.88]),
    ("Grand Central", [0.55, 0.91, 0.98, 0.93]),
    ("Budget Inn", [0.97, 0.62, 0.55, 0.58]),
    ("Old Town Lodge", [0.78, 0.75, 0.88, 0.71]),
    ("Airport Express", [0.85, 0.70, 0.35, 0.66]),
    ("Boutique 21", [0.45, 0.95, 0.82, 0.97]),
    ("Riverside Suites", [0.67, 0.86, 0.79, 0.84]),
    ("City Backpackers", [0.99, 0.48, 0.75, 0.42]),
    ("Garden Retreat", [0.72, 0.89, 0.52, 0.86]),
    ("Metro Business", [0.60, 0.80, 0.92, 0.78]),
    ("Seaside Resort", [0.50, 0.84, 0.61, 0.90]),
    ("Station Hotel", [0.88, 0.66, 0.85, 0.60]),
];

fn main() -> EngineResult<()> {
    let mut builder = DatasetBuilder::new(CRITERIA.len() as u32);
    for (_, ratings) in HOTELS {
        builder.push(SparseVector::from_dense(&ratings)?)?;
    }
    let engine = IrEngine::builder()
        .dataset(builder.build())
        .config(RegionConfig::flat(Algorithm::Cpt))
        .build()?;

    // The user cares most about cleanliness, then price, then service.
    let query = QueryBuilder::new(5)
        .weight(0, 0.6) // price value
        .weight(1, 0.9) // cleanliness
        .weight(3, 0.4) // service
        .build()?;

    let mut computation = engine.computation(&query)?;
    let report = computation.compute()?;

    println!("top-5 hotels for weights (price 0.6, cleanliness 0.9, service 0.4):");
    for (rank, entry) in computation.result().entries().iter().enumerate() {
        println!(
            "  {}. {:<18} score {:.3}",
            rank + 1,
            HOTELS[entry.id.index()].0,
            entry.score
        );
    }

    println!("\nsensitivity of the shortlist to each criterion:");
    let mut widths: Vec<(&str, f64, &DimRegions)> = report
        .dims
        .iter()
        .map(|d| (CRITERIA[d.dim.index()], d.immutable.width(), d))
        .collect();
    widths.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (name, width, dim) in &widths {
        println!(
            "  {:<12} weight {:.2}  tolerates ({:+.3}, {:+.3})  [width {:.3}]",
            name, dim.weight, dim.immutable.lo, dim.immutable.hi, width
        );
        if let Some(boundary) = &dim.upper_boundary {
            describe(boundary, "raised");
        }
        if let Some(boundary) = &dim.lower_boundary {
            describe(boundary, "lowered");
        }
    }
    let (most_sensitive, _, _) = widths[0];
    println!(
        "\nthe recommendation is most sensitive to '{most_sensitive}' — a small change of that \
         weight is the most likely to alter the shortlist"
    );
    Ok(())
}

fn describe(boundary: &RegionBoundary, direction: &str) {
    match boundary.perturbation {
        Perturbation::Reorder {
            moved_up,
            moved_down,
        } => println!(
            "      if {direction} past {:+.3}: {} overtakes {}",
            boundary.delta,
            HOTELS[moved_up.index()].0,
            HOTELS[moved_down.index()].0
        ),
        Perturbation::Replace { entering, leaving } => println!(
            "      if {direction} past {:+.3}: {} replaces {}",
            boundary.delta,
            HOTELS[entering.index()].0,
            HOTELS[leaving.index()].0
        ),
    }
}
