//! [`SubscriptionManager`]: serving a fleet of live subscriptions.
//!
//! The paper's economics only pay off at fleet scale: a server holding
//! *many* subscribed top-k queries answers the overwhelming majority of
//! weight-drift events with a local, allocation-free region check, and
//! amortizes the region-exiting minority into batched recomputes over the
//! shared warm buffer pool. This module is that serving layer:
//!
//! * [`SubscriptionManager`] owns N live subscriptions keyed by id,
//!   ingests [`DriftEvent`] streams (see `ir_datagen::drift`), and yields
//!   one [`FleetAnswer`] per event — either served locally from the
//!   cached region report or recomputed in a batch.
//! * Region-exiting events are queued as pending recompute jobs and
//!   flushed through [`IrEngine::query_batch`] in chunks, ordered by a
//!   heat-weighted scheduler (see below) so hot subscriptions re-anchor
//!   first.
//! * Every flush and local answer is recorded in the engine's shared
//!   health counters ([`crate::engine::EngineHealthSnapshot`]'s `fleet_*` fields) and in
//!   the manager's own [`FleetStats`].
//!
//! # Correctness model
//!
//! A local answer is served against the subscription's *anchor* — the
//! query its cached report was computed at — even while a recompute for
//! an earlier event is still pending. That is sound because the immutable
//! region is a guarantee about results, not about the anchor's freshness:
//! if the drifted weights lie inside the anchor's region, a fresh
//! recompute at those weights returns byte-identically the anchor's
//! result. The fleet oracle test (`tests/fleet_oracle.rs`) proves exactly
//! this equivalence for every served answer.
//!
//! Recompute batches may be *scheduled* out of event order, but
//! re-anchoring is applied in event-sequence order per subscription
//! (last event wins), so the manager's end state is independent of the
//! schedule.
//!
//! # The heat scheduler
//!
//! Pending jobs are drawn without replacement with probability
//! proportional to their subscription's heat (drift events seen so far),
//! using the weighted-ranges candidate-list idiom: each job owns a
//! half-open range of the cumulative weight space, a seeded draw binary-
//! searches the ranges, drawn jobs are marked for deletion in place, and
//! the list is incrementally rebuilt (`rebalanced`) only once enough
//! marked entries accumulate. Draws use an inline LCG seeded from
//! [`FleetConfig::scheduler_seed`], so the schedule — and therefore the
//! whole serving trace — is deterministic.
//!
//! # Dynamic data
//!
//! The fleet survives tuple updates to the shared index.
//! [`SubscriptionManager::apply_updates`] mutates the index through
//! [`IrEngine::apply_updates`] and then *screens* every member's cached
//! report with the kinetic line test ([`ir_core::update_impact`]): a
//! member whose report provably survives keeps serving locally at zero
//! cost, a punctured member is marked **stale** and re-anchored by an
//! *invalidation job* — a recompute at its current weights that emits no
//! [`FleetAnswer`] and counts in no serving statistic, so event
//! conservation (`local_answers + recomputes == events`) holds across
//! mutations. A stale member never serves a local answer (its cached
//! report predates the mutation); until its invalidation lands, every
//! drift event it receives is answered by recompute. When several
//! managers share one engine, the mutating one forwards the returned
//! [`AppliedUpdate`]s to its peers' [`SubscriptionManager::revalidate`].

use crate::engine::{immutable_under, EngineError, EngineResult, IrEngine};
use ir_core::{update_impact, RegionReport, UpdateImpact};
use ir_datagen::DriftEvent;
use ir_storage::AppliedUpdate;
use ir_types::{QueryVector, SeededLcg, TupleId, TupleUpdate};
use std::collections::BTreeMap;
use std::fmt;

/// Configuration of a [`SubscriptionManager`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FleetConfig {
    /// Recompute batch size: pending jobs are flushed through
    /// [`IrEngine::query_batch`] once this many accumulate, and flushed
    /// batches never exceed it. Must be at least 1.
    pub max_batch: usize,
    /// Seed of the heat scheduler's deterministic draw sequence.
    pub scheduler_seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            max_batch: 32,
            scheduler_seed: 0xF1EE7,
        }
    }
}

/// How a [`FleetAnswer`] was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnswerKind {
    /// Served from the cached region report — no I/O, no recompute.
    Local,
    /// Served by a batched region recompute at the event's weights.
    Recomputed,
}

/// The answer to one drift event: the subscription's top-k result at the
/// event's (cumulative) weights.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetAnswer {
    /// Global event sequence number (0-based, assigned at ingest).
    pub seq: u64,
    /// The subscription the event targeted.
    pub sub: u64,
    /// Local cache hit or batched recompute.
    pub kind: AnswerKind,
    /// The top-k tuple ids, best first.
    pub result: Vec<TupleId>,
    /// Deterministic cost of producing the answer: 0 for a local answer,
    /// the recompute's evaluated-candidate count otherwise.
    pub evaluated_candidates: u64,
}

/// Cumulative serving statistics of one manager.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Drift events ingested.
    pub events: u64,
    /// Events answered locally from a cached region report.
    pub local_answers: u64,
    /// Events answered by a batched recompute.
    pub recomputes: u64,
    /// Recompute batches flushed through the engine's worker pool.
    pub batches: u64,
    /// Jobs in the largest batch flushed so far.
    pub largest_batch: u64,
    /// Tuple updates applied through [`SubscriptionManager::apply_updates`].
    pub updates_applied: u64,
    /// Member reports that provably survived an update batch (screened by
    /// the kinetic line test, served on without recomputation).
    pub regions_survived: u64,
    /// Member reports an update batch punctured — re-anchored through an
    /// invalidation recompute.
    pub regions_punctured: u64,
}

impl FleetStats {
    /// Fraction of events answered locally (1.0 for an event-free fleet).
    pub fn hit_ratio(&self) -> f64 {
        if self.events == 0 {
            return 1.0;
        }
        self.local_answers as f64 / self.events as f64
    }
}

/// One live subscription inside the fleet.
struct FleetEntry {
    /// The query the cached report was computed at.
    anchor: QueryVector,
    /// The latest drifted weights (anchor + all ingested deltas).
    current: QueryVector,
    /// Cached top-k ids at the anchor.
    result: Vec<TupleId>,
    /// Cached region report at the anchor.
    report: RegionReport,
    /// Drift events seen — the scheduler's priority weight.
    heat: u64,
    /// Highest event sequence already re-anchored, so out-of-schedule
    /// batch results can never roll an entry backwards.
    last_applied_seq: Option<u64>,
    /// Set when an update batch punctured the cached report (or screening
    /// could not prove survival). A stale report predates the mutation, so
    /// local serving from it is forbidden until a recompute — which always
    /// runs against the post-mutation index — re-anchors the entry.
    stale: bool,
    cache_hits: u64,
    refreshes: u64,
}

/// A read-only view of one fleet member ([`SubscriptionManager::member`]).
pub struct FleetMember<'a> {
    id: u64,
    entry: &'a FleetEntry,
}

impl FleetMember<'_> {
    /// The subscription id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The anchor query the cached report is relative to.
    pub fn anchor(&self) -> &QueryVector {
        &self.entry.anchor
    }

    /// The latest drifted weights.
    pub fn current(&self) -> &QueryVector {
        &self.entry.current
    }

    /// The cached top-k ids at the anchor.
    pub fn result(&self) -> &[TupleId] {
        &self.entry.result
    }

    /// The cached region report at the anchor.
    pub fn report(&self) -> &RegionReport {
        &self.entry.report
    }

    /// Drift events this subscription has seen.
    pub fn heat(&self) -> u64 {
        self.entry.heat
    }

    /// True while an update batch has punctured the cached report and its
    /// invalidation recompute has not landed yet — a stale member answers
    /// by recompute, never from the cache.
    pub fn is_stale(&self) -> bool {
        self.entry.stale
    }

    /// Events answered locally for this subscription.
    pub fn cache_hits(&self) -> u64 {
        self.entry.cache_hits
    }

    /// Batched recomputes applied to this subscription.
    pub fn refreshes(&self) -> u64 {
        self.entry.refreshes
    }
}

/// What a pending recompute job is for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobKind {
    /// Answers a drift event: emits a [`FleetAnswer`] and counts as a
    /// recompute in the serving statistics.
    Drift,
    /// Re-anchors a member whose cached report an update punctured:
    /// maintenance only — no answer, no serving-statistics recompute.
    Invalidation,
}

/// A recompute job waiting for the next flush.
struct PendingJob {
    seq: u64,
    sub: u64,
    weights: QueryVector,
    kind: JobKind,
}

/// A fleet of live subscriptions served from one shared engine.
///
/// See the [module docs](self) for the serving model. The manager is
/// deliberately single-writer (`&mut self` ingest): fan-out parallelism
/// lives *inside* the engine's batch worker pool, where it is proven
/// deterministic, not in the bookkeeping.
pub struct SubscriptionManager {
    engine: IrEngine,
    config: FleetConfig,
    entries: BTreeMap<u64, FleetEntry>,
    pending: Vec<PendingJob>,
    /// Answers produced but not yet handed to the caller — survives a
    /// failed flush so no answer is ever lost.
    ready: Vec<FleetAnswer>,
    next_seq: u64,
    stats: FleetStats,
}

impl fmt::Debug for SubscriptionManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SubscriptionManager")
            .field("subscriptions", &self.entries.len())
            .field("pending", &self.pending.len())
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish()
    }
}

impl SubscriptionManager {
    /// Creates an empty fleet served by `engine` (a cheap handle clone —
    /// the warm index and buffer pool are shared).
    pub fn new(engine: &IrEngine, config: FleetConfig) -> EngineResult<Self> {
        if config.max_batch == 0 {
            return Err(EngineError::Policy(
                "fleet max_batch must be at least 1".to_string(),
            ));
        }
        Ok(SubscriptionManager {
            engine: engine.clone(),
            config,
            entries: BTreeMap::new(),
            pending: Vec::new(),
            ready: Vec::new(),
            next_seq: 0,
            stats: FleetStats::default(),
        })
    }

    /// Number of live subscriptions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True while the fleet has no subscriptions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if `sub` is a live subscription.
    pub fn contains(&self, sub: u64) -> bool {
        self.entries.contains_key(&sub)
    }

    /// Recompute jobs waiting for the next flush.
    pub fn pending_recomputes(&self) -> usize {
        self.pending.len()
    }

    /// Cumulative serving statistics.
    pub fn stats(&self) -> FleetStats {
        self.stats
    }

    /// The manager's configuration.
    pub fn config(&self) -> FleetConfig {
        self.config
    }

    /// A read-only view of one member.
    pub fn member(&self, sub: u64) -> Option<FleetMember<'_>> {
        self.entries
            .get(&sub)
            .map(|entry| FleetMember { id: sub, entry })
    }

    /// Iterates the members in id order.
    pub fn members(&self) -> impl Iterator<Item = FleetMember<'_>> {
        self.entries
            .iter()
            .map(|(&id, entry)| FleetMember { id, entry })
    }

    /// Admits one subscription ([`SubscriptionManager::admit_all`] of one).
    pub fn admit(&mut self, sub: u64, query: QueryVector) -> EngineResult<()> {
        self.admit_all([(sub, query)])
    }

    /// Admits a set of subscriptions: their initial results and region
    /// reports are computed in one batch over the engine's worker pool.
    ///
    /// A duplicate id — against the live fleet or within the admitted set
    /// — is rejected with [`EngineError::Policy`] before any computation
    /// runs; on any error the fleet is left unchanged.
    pub fn admit_all(
        &mut self,
        subs: impl IntoIterator<Item = (u64, QueryVector)>,
    ) -> EngineResult<()> {
        let subs: Vec<(u64, QueryVector)> = subs.into_iter().collect();
        let mut ids = std::collections::BTreeSet::new();
        for (sub, _) in &subs {
            if self.entries.contains_key(sub) || !ids.insert(*sub) {
                return Err(EngineError::Policy(format!(
                    "subscription {sub} is already admitted"
                )));
            }
        }
        let queries: Vec<QueryVector> = subs.iter().map(|(_, q)| q.clone()).collect();
        for chunk_start in (0..queries.len()).step_by(self.config.max_batch) {
            let chunk_end = (chunk_start + self.config.max_batch).min(queries.len());
            let reports = self.engine.query_batch(&queries[chunk_start..chunk_end])?;
            for (offset, report) in reports.into_iter().enumerate() {
                let (sub, query) = &subs[chunk_start + offset];
                self.entries.insert(
                    *sub,
                    FleetEntry {
                        anchor: query.clone(),
                        current: query.clone(),
                        result: report.current_result().to_vec(),
                        report,
                        heat: 0,
                        last_applied_seq: None,
                        stale: false,
                        cache_hits: 0,
                        refreshes: 0,
                    },
                );
            }
        }
        Ok(())
    }

    /// Ingests a slice of drift events and returns one answer per event
    /// (plus any answers buffered by a previously failed flush), in event-
    /// sequence order.
    ///
    /// The in-region majority is answered locally; region exits queue a
    /// recompute job, flushed in heat-ordered batches whenever
    /// [`FleetConfig::max_batch`] jobs accumulate and once more at the
    /// end. On error (an unknown subscription id, a storage fault during
    /// a flush) the manager stays serviceable: untouched subscriptions
    /// keep serving, already-produced answers and still-pending jobs are
    /// retained, and a later [`SubscriptionManager::flush`] or `ingest`
    /// resumes where the failure struck.
    pub fn ingest(&mut self, events: &[DriftEvent]) -> EngineResult<Vec<FleetAnswer>> {
        for event in events {
            let entry = self.entries.get_mut(&event.sub).ok_or_else(|| {
                EngineError::Policy(format!(
                    "drift event targets unknown subscription {}",
                    event.sub
                ))
            })?;
            let seq = self.next_seq;
            self.next_seq += 1;
            self.stats.events += 1;
            entry.heat += 1;
            entry.current = entry.current.with_weight_shift(event.dim, event.delta)?;

            // A stale entry's report predates a mutation of the index:
            // `immutable_under` against it proves nothing, so the event is
            // forced through a recompute even when the weights stayed put.
            if !entry.stale && immutable_under(&entry.anchor, &entry.report, &entry.current) {
                entry.cache_hits += 1;
                self.stats.local_answers += 1;
                self.engine.note_fleet_traffic(1, 0, 0);
                self.ready.push(FleetAnswer {
                    seq,
                    sub: event.sub,
                    kind: AnswerKind::Local,
                    result: entry.result.clone(),
                    evaluated_candidates: 0,
                });
            } else {
                self.pending.push(PendingJob {
                    seq,
                    sub: event.sub,
                    weights: entry.current.clone(),
                    kind: JobKind::Drift,
                });
                if self.pending.len() >= self.config.max_batch {
                    self.flush_pending()?;
                }
            }
        }
        self.flush_pending()?;
        Ok(self.drain_ready())
    }

    /// Flushes all pending recompute jobs and returns the answers they
    /// produce (plus any answers buffered by a previously failed flush).
    pub fn flush(&mut self) -> EngineResult<Vec<FleetAnswer>> {
        self.flush_pending()?;
        Ok(self.drain_ready())
    }

    /// Applies a batch of tuple updates to the shared index and brings
    /// every member's cached region report back in line with the mutated
    /// data (see [`SubscriptionManager::revalidate`]).
    ///
    /// Returns one [`AppliedUpdate`] per input. When other managers share
    /// this engine, forward the returned slice to their `revalidate` — the
    /// index is shared, their caches are not.
    pub fn apply_updates(&mut self, updates: &[TupleUpdate]) -> EngineResult<Vec<AppliedUpdate>> {
        let applied = self.engine.apply_updates(updates)?;
        self.stats.updates_applied += applied.len() as u64;
        self.revalidate(&applied)?;
        Ok(applied)
    }

    /// Re-validates every member's cached report against updates already
    /// applied to the shared index (by this manager's
    /// [`SubscriptionManager::apply_updates`] or by a peer holding the
    /// same engine).
    ///
    /// Each member is screened with the kinetic line test
    /// ([`ir_core::update_impact`]): survivors keep serving locally,
    /// punctured members are marked stale and re-anchored at their current
    /// weights through an invalidation job, flushed synchronously before
    /// this method returns. Screening that cannot complete (a device fault
    /// mid-fetch) conservatively punctures — survival must be proven.
    /// Survival and puncture counts land in [`FleetStats`] and the
    /// engine's shared `regions_survived` / `regions_punctured` health
    /// counters.
    ///
    /// On a failed flush the punctured members stay stale — they answer
    /// every drift event by recompute, never from the stale cache — and
    /// their invalidation jobs stay pending for the next flush or ingest.
    pub fn revalidate(&mut self, applied: &[AppliedUpdate]) -> EngineResult<()> {
        if applied.is_empty() || self.entries.is_empty() {
            return Ok(());
        }
        let engine = self.engine.clone();
        let mut survived = 0u64;
        let mut punctured: Vec<(u64, QueryVector)> = Vec::new();
        for (&sub, entry) in self.entries.iter_mut() {
            let mut verdict = UpdateImpact::Survived;
            for update in applied {
                let impact = update_impact(
                    &entry.anchor,
                    &entry.report,
                    update.tuple,
                    &update.old_vector,
                    &update.new_vector,
                    |id| engine.index().fetch_tuple(id),
                )
                // An unscreenable member is an unproven one: puncture.
                .unwrap_or(UpdateImpact::Punctured);
                if !impact.survived() {
                    verdict = UpdateImpact::Punctured;
                    break;
                }
            }
            if verdict.survived() {
                survived += 1;
            } else {
                entry.stale = true;
                punctured.push((sub, entry.current.clone()));
            }
        }
        self.stats.regions_survived += survived;
        self.stats.regions_punctured += punctured.len() as u64;
        self.engine
            .note_region_survival(survived, punctured.len() as u64);
        for (sub, weights) in punctured {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.pending.push(PendingJob {
                seq,
                sub,
                weights,
                kind: JobKind::Invalidation,
            });
        }
        self.flush_pending()
    }

    fn drain_ready(&mut self) -> Vec<FleetAnswer> {
        let mut answers = std::mem::take(&mut self.ready);
        answers.sort_by_key(|a| a.seq);
        answers
    }

    /// Runs every pending job through the engine in heat-ordered batches.
    /// On a batch failure the failed chunk and everything after it go back
    /// to the pending queue; chunks that already succeeded stay applied
    /// (their answers are buffered in `ready`).
    fn flush_pending(&mut self) -> EngineResult<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let jobs = std::mem::take(&mut self.pending);
        let mut order = self.schedule(&jobs);

        while !order.is_empty() {
            let chunk: Vec<usize> = order
                .drain(..self.config.max_batch.min(order.len()))
                .collect();
            let queries: Vec<QueryVector> =
                chunk.iter().map(|&i| jobs[i].weights.clone()).collect();
            let reports = match self.engine.query_batch(&queries) {
                Ok(reports) => reports,
                Err(err) => {
                    // Re-queue the failed chunk and every undrawn job, in
                    // event order, so a retry flush serves them all.
                    let mut back: Vec<PendingJob> = chunk
                        .into_iter()
                        .chain(order)
                        .map(|i| &jobs[i])
                        .map(|job| PendingJob {
                            seq: job.seq,
                            sub: job.sub,
                            weights: job.weights.clone(),
                            kind: job.kind,
                        })
                        .collect();
                    back.sort_by_key(|job| job.seq);
                    self.pending = back;
                    return Err(err);
                }
            };

            self.stats.batches += 1;
            self.stats.largest_batch = self.stats.largest_batch.max(reports.len() as u64);
            let drift_jobs = chunk
                .iter()
                .filter(|&&i| jobs[i].kind == JobKind::Drift)
                .count() as u64;
            self.engine.note_fleet_traffic(0, drift_jobs, 1);
            // Apply in event order within the chunk so a subscription hit
            // twice is left anchored at its latest weights.
            let mut applied: Vec<(usize, RegionReport)> = chunk.into_iter().zip(reports).collect();
            applied.sort_by_key(|(i, _)| jobs[*i].seq);
            for (i, report) in applied {
                let job = &jobs[i];
                let entry = self
                    .entries
                    .get_mut(&job.sub)
                    .expect("pending job targets a live subscription");
                let result = report.current_result().to_vec();
                let cost = report.stats.evaluated_candidates;
                if job.kind == JobKind::Drift {
                    entry.refreshes += 1;
                    self.stats.recomputes += 1;
                }
                if entry.last_applied_seq.map_or(true, |last| job.seq > last) {
                    entry.anchor = job.weights.clone();
                    entry.result = result.clone();
                    entry.report = report;
                    entry.last_applied_seq = Some(job.seq);
                    // The report was computed just now, against the current
                    // (post-mutation) index: the entry is fresh again.
                    entry.stale = false;
                }
                if job.kind == JobKind::Drift {
                    self.ready.push(FleetAnswer {
                        seq: job.seq,
                        sub: job.sub,
                        kind: AnswerKind::Recomputed,
                        evaluated_candidates: cost,
                        result,
                    });
                }
            }
        }
        Ok(())
    }

    /// Orders pending job indices hot-first with the weighted candidate-
    /// list scheduler (see the [module docs](self)).
    fn schedule(&self, jobs: &[PendingJob]) -> Vec<usize> {
        if jobs.len() <= 1 {
            return (0..jobs.len()).collect();
        }
        let heat = |job: &PendingJob| self.entries[&job.sub].heat + 1;
        let mut list = CandidateList::new(jobs.iter().map(heat));
        let mut rng = SeededLcg::mixed(self.config.scheduler_seed ^ jobs[0].seq);
        let mut order = Vec::with_capacity(jobs.len());
        while order.len() < jobs.len() {
            order.push(list.draw(&mut rng));
        }
        order
    }
}

/// Weighted sampling without replacement over pending jobs — the
/// candidate-list idiom: cumulative weight ranges, binary-searched draws,
/// mark-for-deletion, and an incremental `rebalanced` rebuild once marked
/// entries dominate.
struct Candidate {
    index: usize,
    start: u64,
    end: u64,
    is_marked_for_deletion: bool,
}

struct CandidateList {
    candidates: Vec<Candidate>,
    total_weight: u64,
    marked: usize,
}

impl CandidateList {
    fn new(weights: impl Iterator<Item = u64>) -> Self {
        let mut candidates = Vec::new();
        let mut total_weight = 0u64;
        for (index, w) in weights.enumerate() {
            let start = total_weight;
            total_weight += w.max(1);
            candidates.push(Candidate {
                index,
                start,
                end: total_weight,
                is_marked_for_deletion: false,
            });
        }
        CandidateList {
            candidates,
            total_weight,
            marked: 0,
        }
    }

    /// Rebuilds the list without the marked entries, compacting the
    /// cumulative weight space.
    fn rebalanced(&self) -> Self {
        let mut candidates = Vec::with_capacity(self.candidates.len() - self.marked);
        let mut total_weight = 0u64;
        for c in self.candidates.iter().filter(|c| !c.is_marked_for_deletion) {
            let w = c.end - c.start;
            candidates.push(Candidate {
                index: c.index,
                start: total_weight,
                end: total_weight + w,
                is_marked_for_deletion: false,
            });
            total_weight += w;
        }
        CandidateList {
            candidates,
            total_weight,
            marked: 0,
        }
    }

    /// Index of the candidate whose range contains `r`.
    fn find(&self, r: u64) -> usize {
        self.candidates
            .partition_point(|c| c.end <= r)
            .min(self.candidates.len() - 1)
    }

    /// Draws one unmarked candidate, marking it; rebalances once marked
    /// entries reach half the list.
    fn draw(&mut self, rng: &mut SeededLcg) -> usize {
        loop {
            if self.marked * 2 >= self.candidates.len() {
                *self = self.rebalanced();
            }
            let r = rng.next_mixed() % self.total_weight.max(1);
            let pos = self.find(r);
            let c = &mut self.candidates[pos];
            if !c.is_marked_for_deletion {
                c.is_marked_for_deletion = true;
                self.marked += 1;
                return c.index;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_datagen::{DriftConfig, DriftStream};
    use ir_types::{Dataset, DatasetBuilder};

    fn dataset() -> Dataset {
        let mut builder = DatasetBuilder::new(5);
        for i in 0..160u32 {
            let pairs: Vec<(u32, f64)> = (0..5u32)
                .map(|d| (d, (((i * 31 + d * 17) % 97) + 1) as f64 / 98.0))
                .collect();
            builder.push_pairs(pairs).unwrap();
        }
        builder.build()
    }

    fn fleet_queries(n: usize, k: usize) -> Vec<(u64, QueryVector)> {
        (0..n as u32)
            .map(|i| {
                let q = QueryVector::new(
                    [
                        (i % 5, 0.2 + 0.1 * (i % 4) as f64),
                        ((i + 1) % 5, 0.9 - 0.1 * (i % 3) as f64),
                        ((i + 2) % 5, 0.5),
                    ],
                    k,
                )
                .unwrap();
                (i as u64, q)
            })
            .collect()
    }

    fn engine() -> IrEngine {
        IrEngine::builder().dataset_ref(&dataset()).build().unwrap()
    }

    #[test]
    fn fleet_serves_a_drift_stream_end_to_end() {
        let engine = engine();
        let mut manager = SubscriptionManager::new(
            &engine,
            FleetConfig {
                max_batch: 4,
                ..FleetConfig::default()
            },
        )
        .unwrap();
        let fleet = fleet_queries(8, 4);
        manager.admit_all(fleet.clone()).unwrap();
        assert_eq!(manager.len(), 8);

        let stream = DriftStream::generate(&fleet, &DriftConfig::default(), 42).unwrap();
        let events = &stream.events()[..200];
        let answers = manager.ingest(events).unwrap();

        assert_eq!(answers.len(), events.len());
        for (i, answer) in answers.iter().enumerate() {
            assert_eq!(answer.seq, i as u64, "answers come back in event order");
            assert_eq!(answer.sub, events[i].sub);
            assert!(!answer.result.is_empty());
        }

        let stats = manager.stats();
        assert_eq!(stats.events, events.len() as u64);
        assert_eq!(
            stats.local_answers + stats.recomputes,
            stats.events,
            "every event is answered exactly once"
        );
        assert!(
            stats.local_answers > stats.recomputes,
            "the in-region majority must be served locally: {stats:?}"
        );
        assert!(stats.batches > 0);
        assert!(stats.largest_batch <= manager.config().max_batch as u64);
        assert_eq!(manager.pending_recomputes(), 0);

        // The engine's shared health counters saw the same traffic.
        let health = engine.health();
        assert_eq!(health.fleet_local_answers, stats.local_answers);
        assert_eq!(health.fleet_recomputes, stats.recomputes);
        assert_eq!(health.fleet_batches, stats.batches);

        // Per-member accounting sums to the fleet totals.
        let hits: u64 = manager.members().map(|m| m.cache_hits()).sum();
        let refreshes: u64 = manager.members().map(|m| m.refreshes()).sum();
        assert_eq!(hits, stats.local_answers);
        assert_eq!(refreshes, stats.recomputes);
        let heat: u64 = manager.members().map(|m| m.heat()).sum();
        assert_eq!(heat, stats.events);
    }

    #[test]
    fn serving_trace_is_deterministic() {
        let fleet = fleet_queries(6, 4);
        let stream = DriftStream::generate(&fleet, &DriftConfig::default(), 7).unwrap();
        let run = || {
            let engine = engine();
            let mut manager = SubscriptionManager::new(&engine, FleetConfig::default()).unwrap();
            manager.admit_all(fleet.clone()).unwrap();
            manager.ingest(&stream.events()[..150]).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn bad_fleet_configuration_is_a_typed_policy_error() {
        let engine = engine();
        assert!(matches!(
            SubscriptionManager::new(
                &engine,
                FleetConfig {
                    max_batch: 0,
                    ..FleetConfig::default()
                }
            ),
            Err(EngineError::Policy(_))
        ));

        let mut manager = SubscriptionManager::new(&engine, FleetConfig::default()).unwrap();
        let fleet = fleet_queries(2, 4);
        manager.admit_all(fleet.clone()).unwrap();
        assert!(matches!(
            manager.admit(0, fleet[0].1.clone()),
            Err(EngineError::Policy(_))
        ));
        assert!(matches!(
            manager.ingest(&[DriftEvent {
                sub: 999,
                dim: ir_types::DimId(0),
                delta: 0.01,
            }]),
            Err(EngineError::Policy(_))
        ));
        // The failure left the fleet serviceable.
        assert_eq!(manager.len(), 2);
        let answers = manager
            .ingest(&[DriftEvent {
                sub: 0,
                dim: fleet[0].1.dims().next().unwrap().0,
                delta: 0.001,
            }])
            .unwrap();
        assert_eq!(answers.len(), 1);
    }

    #[test]
    fn updates_screen_the_fleet_and_recompute_only_punctured_members() {
        let engine = engine();
        let mut manager = SubscriptionManager::new(&engine, FleetConfig::default()).unwrap();
        let fleet = fleet_queries(6, 4);
        manager.admit_all(fleet.clone()).unwrap();

        // An insert far below every k-th line survives every member: no
        // invalidation, no recompute, every cache kept.
        let low = TupleUpdate::Insert {
            vector: ir_types::SparseVector::from_pairs((0..5u32).map(|d| (d, 0.001))).unwrap(),
        };
        let applied = manager.apply_updates(&[low]).unwrap();
        assert_eq!(applied.len(), 1);
        let stats = manager.stats();
        assert_eq!(stats.updates_applied, 1);
        assert_eq!(stats.regions_survived, 6);
        assert_eq!(stats.regions_punctured, 0);
        assert_eq!(stats.recomputes, 0);
        assert_eq!(manager.pending_recomputes(), 0);
        assert!(manager.members().all(|m| !m.is_stale()));

        // Deleting the head of member 0's result punctures every member
        // holding it; the punctured are re-anchored synchronously.
        let victim = manager.member(0).unwrap().result()[0];
        manager
            .apply_updates(&[TupleUpdate::Delete { tuple: victim }])
            .unwrap();
        let stats = manager.stats();
        assert_eq!(stats.updates_applied, 2);
        assert!(stats.regions_punctured >= 1);
        assert_eq!(stats.regions_survived + stats.regions_punctured, 12);
        assert_eq!(
            stats.recomputes, 0,
            "invalidation recomputes are maintenance, not event answers"
        );
        assert_eq!(manager.pending_recomputes(), 0);
        assert!(manager.members().all(|m| !m.is_stale()));
        assert!(
            manager.flush().unwrap().is_empty(),
            "invalidation jobs must not emit answers"
        );

        // Every cached report — survivor or re-anchored — is byte-identical
        // to a fresh recompute on the mutated data, and the deleted tuple
        // is gone from every result.
        for member in manager.members() {
            let fresh = engine.query(member.current()).unwrap();
            assert_eq!(member.report().dims, fresh.dims);
            assert_eq!(member.result(), fresh.current_result());
            assert!(!member.result().contains(&victim));
        }

        // The engine's shared health counters mirror the fleet's.
        let health = engine.health();
        assert_eq!(health.updates_applied, 2);
        assert_eq!(health.regions_survived, stats.regions_survived);
        assert_eq!(health.regions_punctured, stats.regions_punctured);
    }

    #[test]
    fn an_invalidation_arriving_during_a_failed_flush_is_not_double_applied() {
        // The satellite scenario: a drift recompute dies at the device and
        // its job is re-queued; an update batch then punctures the same
        // member and enqueues an invalidation job; the drain applies both.
        // The `last_applied_seq` guard must leave the entry anchored by the
        // newest job, and the invalidation must add neither a second answer
        // nor a second recompute for the one drift event.
        let dir = tempfile::tempdir().unwrap();
        let engine = IrEngine::builder()
            .dataset_ref(&dataset())
            .backend(crate::storage::StorageBackend::Disk(
                dir.path().to_path_buf(),
            ))
            .pool_capacity(4)
            .fault_plan(crate::storage::FaultPlan::device_outage(0, None))
            .build()
            .unwrap();
        let injector = engine.index().fault_injector().unwrap();
        injector.disarm();
        let mut manager = SubscriptionManager::new(
            &engine,
            FleetConfig {
                max_batch: 2,
                ..FleetConfig::default()
            },
        )
        .unwrap();
        let fleet = fleet_queries(4, 4);
        manager.admit_all(fleet.clone()).unwrap();

        // One warm in-region event on dim 0; the follow-up event on dim 1
        // leaves the current weights deviating from the anchor in two
        // dimensions — per-dimension regions certify nothing there, so a
        // recompute is forced, and it dies at the armed device: the job
        // survives the failed flush in the pending queue.
        let warm = manager
            .ingest(&[DriftEvent {
                sub: 0,
                dim: ir_types::DimId(0),
                delta: 0.01,
            }])
            .unwrap();
        assert_eq!(warm.len(), 1);
        assert_eq!(warm[0].kind, AnswerKind::Local);
        injector.arm();
        engine.cold_start();
        let event = DriftEvent {
            sub: 0,
            dim: ir_types::DimId(1),
            delta: 0.01,
        };
        let outcome = manager.ingest(&[event]);
        assert!(
            matches!(outcome, Err(EngineError::Core(_))),
            "expected the recompute to die at the device, got {outcome:?}"
        );
        assert_eq!(manager.pending_recomputes(), 1);

        // Device heals; the update punctures member 0 while its drift job
        // is still pending. The synchronous flush drains both jobs.
        injector.disarm();
        let victim = manager.member(0).unwrap().result()[0];
        manager
            .apply_updates(&[TupleUpdate::Delete { tuple: victim }])
            .unwrap();
        assert_eq!(manager.pending_recomputes(), 0);

        let stats = manager.stats();
        assert_eq!(stats.events, 2);
        assert_eq!(stats.local_answers, 1);
        assert!(stats.regions_punctured >= 1);
        assert_eq!(
            stats.recomputes, 1,
            "one exiting drift event, one recompute — the invalidation must not double-count"
        );
        assert_eq!(manager.member(0).unwrap().refreshes(), 1);

        // Exactly one answer drains — the drift event's — and it reflects
        // the mutated data at the drifted weights.
        let answers = manager.flush().unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].seq, 1);
        assert_eq!(answers[0].kind, AnswerKind::Recomputed);
        assert!(!answers[0].result.contains(&victim));

        // The entry is anchored at its newest weights with a fresh report:
        // every member matches a full recompute on the mutated index.
        let m0 = manager.member(0).unwrap();
        assert_eq!(m0.anchor(), m0.current());
        assert!(!m0.is_stale());
        assert_eq!(answers[0].result, m0.result());
        for member in manager.members() {
            let fresh = engine.query(member.current()).unwrap();
            assert_eq!(member.report().dims, fresh.dims);
            assert_eq!(member.result(), fresh.current_result());
        }
    }

    #[test]
    fn a_stale_member_answers_by_recompute_until_revalidation_lands() {
        // A peer manager shares the engine but not the caches: the index
        // is mutated externally, screening runs on a dead device (every
        // member conservatively punctures), the synchronous flush fails —
        // and until the invalidations land, even a zero-drift event on a
        // stale member must be answered by recompute, never from the
        // pre-mutation cache.
        let dir = tempfile::tempdir().unwrap();
        let engine = IrEngine::builder()
            .dataset_ref(&dataset())
            .backend(crate::storage::StorageBackend::Disk(
                dir.path().to_path_buf(),
            ))
            .pool_capacity(4)
            .fault_plan(crate::storage::FaultPlan::device_outage(0, None))
            .build()
            .unwrap();
        let injector = engine.index().fault_injector().unwrap();
        injector.disarm();
        let mut manager = SubscriptionManager::new(&engine, FleetConfig::default()).unwrap();
        let fleet = fleet_queries(3, 4);
        manager.admit_all(fleet.clone()).unwrap();

        // Mutate the shared index directly (a peer's apply_updates would
        // look the same from here): a non-member tuple changes on dim 2, a
        // query dimension of every member, so screening needs fetches.
        let members: std::collections::BTreeSet<TupleId> = manager
            .members()
            .flat_map(|m| m.result().to_vec())
            .collect();
        let outsider = (0..160u32)
            .map(TupleId)
            .find(|id| !members.contains(id))
            .unwrap();
        let applied = engine
            .apply_updates(&[TupleUpdate::UpdateScore {
                tuple: outsider,
                dim: ir_types::DimId(2),
                value: 0.001,
            }])
            .unwrap();

        // Screening on a dead device cannot prove survival: every member
        // is conservatively punctured and stale; the flush fails.
        injector.arm();
        engine.cold_start();
        assert!(matches!(
            manager.revalidate(&applied),
            Err(EngineError::Core(_))
        ));
        assert_eq!(manager.stats().regions_punctured, 3);
        assert_eq!(manager.pending_recomputes(), 3);
        assert!(manager.members().all(|m| m.is_stale()));

        // A zero-drift event is inside the cached region, but the stale
        // gate forbids the local answer; its recompute also dies.
        let dim = fleet[0].1.dims().next().unwrap().0;
        assert!(matches!(
            manager.ingest(&[DriftEvent {
                sub: 0,
                dim,
                delta: 0.0
            }]),
            Err(EngineError::Core(_))
        ));
        assert_eq!(manager.stats().events, 1);
        assert_eq!(manager.stats().local_answers, 0);

        // Heal: the drain serves the deferred event by recompute (the
        // three invalidations emit nothing) and freshens every cache.
        injector.disarm();
        let answers = manager.flush().unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].kind, AnswerKind::Recomputed);
        assert!(manager.members().all(|m| !m.is_stale()));
        for member in manager.members() {
            let fresh = engine.query(member.current()).unwrap();
            assert_eq!(member.report().dims, fresh.dims);
            assert_eq!(member.result(), fresh.current_result());
        }

        // Freshness restored: the same zero-drift event now serves locally.
        let again = manager
            .ingest(&[DriftEvent {
                sub: 0,
                dim,
                delta: 0.0,
            }])
            .unwrap();
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].kind, AnswerKind::Local);
        let stats = manager.stats();
        assert_eq!(stats.local_answers + stats.recomputes, stats.events);
    }

    #[test]
    fn candidate_list_draws_every_index_once_hot_first_in_expectation() {
        let weights = [1u64, 1, 1, 1000, 1, 1, 1, 1];
        let mut first_draws = Vec::new();
        for seed in 0..32 {
            let mut list = CandidateList::new(weights.iter().copied());
            let mut rng = SeededLcg::mixed(seed);
            let mut drawn = Vec::new();
            for _ in 0..weights.len() {
                drawn.push(list.draw(&mut rng));
            }
            first_draws.push(drawn[0]);
            let mut sorted = drawn.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..weights.len()).collect::<Vec<_>>());
        }
        let hot_first = first_draws.iter().filter(|&&i| i == 3).count();
        assert!(
            hot_first >= 28,
            "the dominant weight should win almost every opening draw, won {hot_first}/32"
        );
    }
}
