//! # immutable-regions
//!
//! A Rust implementation of *Computing Immutable Regions for Subspace Top-k
//! Queries* (Kyriakos Mouratidis & HweeHwa Pang, PVLDB 6(2), VLDB 2013).
//!
//! Given a high-dimensional dataset and a linearly weighted top-k query over
//! a subset of its dimensions, the library computes — alongside the result —
//! the **immutable region** of every query weight: the widest range the
//! weight can move (all others fixed) without changing the result, plus the
//! exact new result just past each boundary, and optionally the `φ`
//! subsequent regions in each direction.
//!
//! This umbrella crate re-exports the whole stack and adds the [`engine`]
//! layer on top:
//!
//! | layer | crate / module | contents |
//! |-------|----------------|----------|
//! | data model | [`types`] | sparse tuples, datasets, queries, results |
//! | storage | [`storage`] | paged inverted lists, tuple file, buffer pool, I/O accounting |
//! | geometry | [`geometry`] | score-coordinate lines, lower envelopes, kinetic sweep |
//! | top-k | [`topk`] | the resumable random-access Threshold Algorithm |
//! | regions | [`core`] | Scan / Prune / Thres / CPT, `φ ≥ 0`, oracle, parallel driver |
//! | workloads | [`datagen`] | WSJ-like, KB-like and ST dataset generators |
//! | serving | [`engine`] | [`IrEngine`](engine::IrEngine): owned façade, batches, subscriptions, tuple updates |
//! | fleet | [`fleet`] | [`SubscriptionManager`](fleet::SubscriptionManager): many live subscriptions, batched recomputes, region revalidation under updates |
//!
//! ## Quickstart
//!
//! [`engine::IrEngine`] is the front door: an owned, `Send + Sync + Clone`
//! handle that holds the index and warm buffer pool and serves one-off
//! queries, batches over a worker pool, and subscriptions that recompute
//! only when drifting weights leave the reported region.
//!
//! ```
//! use immutable_regions::prelude::*;
//!
//! // The two-dimensional running example of the paper (Figure 1).
//! let engine = IrEngine::builder()
//!     .dataset(Dataset::running_example())
//!     .build()?;
//! let query = QueryVector::running_example(); // q = <0.8, 0.5>, k = 2
//! let report = engine.query(&query)?;
//!
//! // Top-2 result is [d2, d1]; the immutable region of the first weight is
//! // (-16/35, +0.1): within it the result cannot change.
//! let dim0 = report.for_dim(DimId(0)).unwrap();
//! assert!((dim0.immutable.lo + 16.0 / 35.0).abs() < 1e-9);
//! assert!((dim0.immutable.hi - 0.1).abs() < 1e-9);
//!
//! // The subscribed-query loop: drift inside the region is answered from
//! // the cached report, drift outside triggers one recompute.
//! let mut subscription = engine.subscribe(query.clone())?;
//! let drifted = query.with_weight_shift(DimId(0), 0.05)?;
//! assert!(subscription.is_immutable_under(&drifted));
//! # Ok::<(), immutable_regions::engine::EngineError>(())
//! ```
//!
//! The borrow-based low-level API ([`core::RegionComputation`]) remains
//! available for callers that manage index lifetimes themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod fleet;

pub use ir_core as core;
pub use ir_datagen as datagen;
pub use ir_geometry as geometry;
pub use ir_storage as storage;
pub use ir_topk as topk;
pub use ir_types as types;

/// Everything needed for typical use, importable with one `use`.
pub mod prelude {
    pub use crate::engine::{
        ClusterTopology, EngineError, EngineHealthSnapshot, EnginePolicy, EngineResult, IrEngine,
        IrEngineBuilder, PartitionMode, Subscription,
    };
    pub use crate::fleet::{
        AnswerKind, FleetAnswer, FleetConfig, FleetMember, FleetStats, SubscriptionManager,
    };
    pub use ir_core::{
        update_impact, Algorithm, BatchOutcome, BatchRegionComputation, ComputationStats,
        DimRegions, ExhaustiveOracle, OwnedRegionComputation, Perturbation, RegionBoundary,
        RegionComputation, RegionConfig, RegionReport, UpdateImpact, WeightRegion,
    };
    pub use ir_datagen::{
        CorrelatedConfig, CorrelatedGenerator, FeatureConfig, FeatureVectorGenerator,
        QueryWorkload, TextCorpusConfig, TextCorpusGenerator, WorkloadConfig,
    };
    pub use ir_datagen::{DriftConfig, DriftEvent, DriftStream};
    pub use ir_datagen::{UpdateConfig, UpdateStream};
    pub use ir_storage::{
        AppliedUpdate, FaultPlan, IndexBuilder, IoConfig, MaintenanceStatsSnapshot, RetryPolicy,
        StorageBackend, TopKIndex,
    };
    pub use ir_topk::{ProbeStrategy, TaConfig, TaRun};
    pub use ir_types::{
        Dataset, DatasetBuilder, DimId, IrError, IrResult, QueryBuilder, QueryVector, SparseVector,
        TopKResult, TupleId, TupleUpdate,
    };
}
