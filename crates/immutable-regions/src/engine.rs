//! [`IrEngine`]: an owned, service-grade façade over the whole stack.
//!
//! The paper's workload is service-shaped: a *subscribed* top-k query whose
//! immutable regions are recomputed as the preference weights drift. The
//! low-level API ([`RegionComputation`]) is borrow-bound — every caller must
//! hand-assemble dataset → index → pool → config and thread lifetimes
//! through its code. The engine replaces that with one owned object that
//! holds the warm state (index + buffer pool behind [`Arc`]) and serves
//! queries; handles are `Send + Sync + Clone` with no caller-visible
//! lifetimes.
//!
//! Three call styles are surfaced:
//!
//! * [`IrEngine::query`] — one query, one [`RegionReport`] (bit-identical to
//!   the low-level sequential path),
//! * [`IrEngine::query_batch`] — many queries fanned out over the engine's
//!   worker pool sharing the warm buffer pool
//!   ([`BatchRegionComputation`] underneath; reports are identical for
//!   every worker count),
//! * [`IrEngine::subscribe`] — the paper's subscribed-query loop as a
//!   first-class API: a [`Subscription`] caches the last report, answers
//!   [`Subscription::is_immutable_under`] locally, and recomputes only when
//!   the weights actually leave the reported region.
//!
//! ```
//! use immutable_regions::prelude::*;
//!
//! let engine = IrEngine::builder()
//!     .dataset(Dataset::running_example())
//!     .build()?;
//! let report = engine.query(&QueryVector::running_example())?;
//! let dim0 = report.for_dim(DimId(0)).unwrap();
//! assert!((dim0.immutable.lo + 16.0 / 35.0).abs() < 1e-9);
//! # Ok::<(), immutable_regions::engine::EngineError>(())
//! ```

use ir_core::{
    BatchOutcome, BatchRegionComputation, OwnedRegionComputation, RegionComputation, RegionConfig,
    RegionReport,
};
use ir_storage::{
    AppliedUpdate, BackendKind, ColdStartInfo, FaultPlan, IndexBuilder, IoConfig,
    MaintenanceStatsSnapshot, RetryPolicy, SnapshotSummary, StorageBackend, TopKIndex,
};
use ir_topk::TaConfig;
use ir_types::{
    Dataset, DimId, IrError, QueryVector, SparseVector, TopKResult, TupleId, TupleUpdate,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;

/// The unified error type of the engine layer.
///
/// The recoverable conditions a serving layer must distinguish get their own
/// typed variants (so callers can, e.g., reject a request instead of
/// retrying it); everything else is carried through as [`EngineError::Core`].
#[derive(Debug)]
pub enum EngineError {
    /// The engine was built over a dataset (or prebuilt index) with no
    /// tuples — no query can be answered.
    EmptyDataset,
    /// A query requested more result tuples than the dataset holds.
    KTooLarge {
        /// Requested result size.
        k: usize,
        /// Number of indexed tuples.
        cardinality: usize,
    },
    /// A query weighted a dimension the index does not know about.
    DimensionNotIndexed {
        /// The offending dimension index.
        dim: u32,
        /// Dimensionality of the indexed dataset.
        dimensionality: u32,
    },
    /// A query had no strictly positive weight (all weights zero or absent).
    ZeroWeightQuery,
    /// [`IrEngineBuilder::build`] was called without a dataset or index.
    NoSource,
    /// [`IrEngine::save_snapshot`] failed; the directory is named so an
    /// operator can tell a permissions/space problem from a device fault.
    SnapshotSave {
        /// Directory the snapshot was being written into.
        dir: PathBuf,
        /// The underlying storage error.
        source: IrError,
    },
    /// [`IrEngineBuilder::open_snapshot`] failed — a missing, foreign,
    /// corrupt or version-bumped snapshot file, or a device fault during
    /// the trailer read.
    SnapshotOpen {
        /// Directory the snapshot was being opened from.
        dir: PathBuf,
        /// The underlying storage error.
        source: IrError,
    },
    /// An engine policy could not be loaded or was inconsistent.
    Policy(String),
    /// Any other error from the underlying stack (storage, TA, solvers).
    Core(IrError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::EmptyDataset => write!(f, "engine has no tuples to query"),
            EngineError::KTooLarge { k, cardinality } => write!(
                f,
                "k = {k} exceeds the {cardinality} tuples the engine indexes"
            ),
            EngineError::DimensionNotIndexed {
                dim,
                dimensionality,
            } => write!(
                f,
                "query dimension {dim} is not indexed (dataset has {dimensionality} dimensions)"
            ),
            EngineError::ZeroWeightQuery => {
                write!(f, "query has no dimension with a positive weight")
            }
            EngineError::NoSource => {
                write!(f, "engine builder needs a dataset or a prebuilt index")
            }
            EngineError::SnapshotSave { dir, source } => {
                write!(f, "saving snapshot to {}: {source}", dir.display())
            }
            EngineError::SnapshotOpen { dir, source } => {
                write!(f, "opening snapshot from {}: {source}", dir.display())
            }
            EngineError::Policy(msg) => write!(f, "invalid engine policy: {msg}"),
            EngineError::Core(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Core(err)
            | EngineError::SnapshotSave { source: err, .. }
            | EngineError::SnapshotOpen { source: err, .. } => Some(err),
            _ => None,
        }
    }
}

impl From<IrError> for EngineError {
    fn from(err: IrError) -> Self {
        match err {
            IrError::InvalidK { k, cardinality } => EngineError::KTooLarge { k, cardinality },
            IrError::UnknownDimension {
                dim,
                dimensionality,
            } => EngineError::DimensionNotIndexed {
                dim,
                dimensionality,
            },
            IrError::EmptyQuery => EngineError::ZeroWeightQuery,
            other => EngineError::Core(other),
        }
    }
}

/// The serializable part of an engine's configuration: the default region
/// policy, the worker count and the storage-backend kind. Loadable from a
/// JSON file ([`EnginePolicy::from_json_file`]) and dumped into
/// `BENCH_*.json` metadata by the experiment harness.
///
/// Deserialization is strict — every field must be present (the vendored
/// serde has no `#[serde(default)]`), so policy JSON written before a field
/// existed must be refreshed; the committed bench baselines were
/// regenerated when `backend` was added and again when `fault_plan` was.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnginePolicy {
    /// Default region configuration (algorithm, φ, perturbation mode).
    pub config: RegionConfig,
    /// Worker count for batch execution (1 = sequential).
    pub threads: usize,
    /// Which page-store backend serves the engine (mem, file or mmap).
    ///
    /// Descriptive metadata: [`IrEngine::policy`] reports the backend the
    /// index was actually built on, and the experiment harness stamps it
    /// into emitted series. When *loading* a policy, the field is advisory —
    /// selecting a file or mmap backend needs a path and goes through
    /// [`IrEngineBuilder::backend`] / [`IrEngineBuilder::on_disk`] /
    /// [`IrEngineBuilder::on_mmap`].
    pub backend: BackendKind,
    /// The fault plan the engine's storage device executes, if any
    /// (`null`/`None` — the default — means a well-behaved device).
    ///
    /// Unlike `backend` this field *is* applied by
    /// [`IrEngineBuilder::policy`]: a policy file describing a
    /// chaos-testing configuration is enough to reproduce it.
    pub fault_plan: Option<FaultPlan>,
    /// How the engine's index came up and what deterministic work that cost
    /// (built from the dataset vs opened from a snapshot; pages touched,
    /// bytes parsed — see [`ColdStartInfo`]).
    ///
    /// Descriptive metadata, like `backend`: [`IrEngine::policy`] reports
    /// what actually happened and the experiment harness stamps it into
    /// emitted series; [`IrEngineBuilder::policy`] does not apply it.
    pub cold_start: ColdStartInfo,
    /// The cluster topology this engine served under, if any (`null`/`None`
    /// — the default — means a plain unsharded engine).
    ///
    /// Descriptive metadata stamped by the `ir-cluster` coordinator so every
    /// `BENCH_*.json` records how many shards produced the numbers, how the
    /// work was partitioned and which seed drove the simulated network.
    pub cluster: Option<ClusterTopology>,
}

impl Default for EnginePolicy {
    fn default() -> Self {
        EnginePolicy {
            config: RegionConfig::default(),
            threads: 1,
            backend: BackendKind::Mem,
            fault_plan: None,
            cold_start: ColdStartInfo::default(),
            cluster: None,
        }
    }
}

/// How a sharded cluster splits a batch of region computations across its
/// nodes (see the `ir-cluster` crate; defined here so [`EnginePolicy`] can
/// record it without depending on the cluster layer).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionMode {
    /// Shard by query dimension: every node holds the full index and solves
    /// the dimensions assigned to it (`dim_index % shards`), one partial
    /// region per dimension.
    #[default]
    ByDim,
    /// Shard by query: every node solves whole queries
    /// (`query_index % shards`) with the plain sequential solver.
    ByQuery,
}

impl fmt::Display for PartitionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PartitionMode::ByDim => "by-dim",
            PartitionMode::ByQuery => "by-query",
        })
    }
}

impl FromStr for PartitionMode {
    type Err = EngineError;

    /// Accepts both the CLI spellings (`by-dim`) and the serialized variant
    /// names (`ByDim`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "by-dim" | "bydim" | "dim" => Ok(PartitionMode::ByDim),
            "by-query" | "byquery" | "query" => Ok(PartitionMode::ByQuery),
            other => Err(EngineError::Policy(format!(
                "unknown partition mode `{other}` (expected by-dim or by-query)"
            ))),
        }
    }
}

/// The shape of a sharded cluster run, as stamped into [`EnginePolicy`] and
/// `BENCH_*.json` metadata: shard count, partition mode and the seed that
/// drove the simulated network's delivery order (and any churn schedule).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterTopology {
    /// Number of shard nodes the work was partitioned across.
    pub shards: u32,
    /// How the work was split ([`PartitionMode`]).
    pub partition: PartitionMode,
    /// The seed of the simulated network (message delay/reordering/drop)
    /// and churn schedule. Two runs with equal topology are byte-identical.
    pub seed: u64,
}

impl EnginePolicy {
    /// Parses a policy from its JSON representation.
    pub fn from_json(json: &str) -> EngineResult<Self> {
        serde_json::from_str(json).map_err(|e| EngineError::Policy(e.to_string()))
    }

    /// Reads a policy from a JSON file.
    pub fn from_json_file(path: impl AsRef<Path>) -> EngineResult<Self> {
        let path = path.as_ref();
        let json = std::fs::read_to_string(path)
            .map_err(|e| EngineError::Policy(format!("{}: {e}", path.display())))?;
        Self::from_json(&json)
    }

    /// Renders the policy as JSON (the format [`EnginePolicy::from_json`]
    /// reads back).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("policy serializes infallibly")
    }
}

/// What the engine is built from.
enum EngineSource<'d> {
    /// Build a fresh index over this owned dataset.
    Dataset(Dataset),
    /// Build a fresh index over a borrowed dataset (no clone; the borrow
    /// ends at [`IrEngineBuilder::build`] — the engine never keeps it).
    DatasetRef(&'d Dataset),
    /// Adopt a prebuilt index.
    Index(Arc<TopKIndex>),
    /// Open a saved snapshot directory — no build pass at all.
    Snapshot(PathBuf),
}

/// Builder for [`IrEngine`]: pick a data source, a storage backend, a
/// buffer-pool budget, a worker count and a default region policy.
///
/// The lifetime parameter only exists for [`IrEngineBuilder::dataset_ref`]
/// (borrowing a dataset during the build); the built [`IrEngine`] is always
/// `'static`.
#[must_use = "an engine builder does nothing until `build` is called"]
pub struct IrEngineBuilder<'d> {
    source: Option<EngineSource<'d>>,
    backend: StorageBackend,
    pool_capacity: Option<usize>,
    io_config: Option<IoConfig>,
    retry_policy: Option<RetryPolicy>,
    fault_plan: Option<FaultPlan>,
    storage_knobs_set: bool,
    config: RegionConfig,
    ta_config: TaConfig,
    threads: usize,
}

impl Default for IrEngineBuilder<'_> {
    fn default() -> Self {
        IrEngineBuilder {
            source: None,
            backend: StorageBackend::Memory,
            pool_capacity: None,
            io_config: None,
            retry_policy: None,
            fault_plan: None,
            storage_knobs_set: false,
            config: RegionConfig::default(),
            ta_config: TaConfig::default(),
            threads: 1,
        }
    }
}

impl<'d> IrEngineBuilder<'d> {
    /// Serves queries over `dataset`; the index is built by
    /// [`IrEngineBuilder::build`] with the selected storage options.
    pub fn dataset(mut self, dataset: Dataset) -> Self {
        self.source = Some(EngineSource::Dataset(dataset));
        self
    }

    /// Like [`IrEngineBuilder::dataset`], but borrowing: the dataset is only
    /// read while [`IrEngineBuilder::build`] constructs the index, so
    /// callers that keep (or repeatedly reuse) a dataset — e.g. sweeping
    /// storage configurations over one corpus — avoid cloning it.
    pub fn dataset_ref(mut self, dataset: &'d Dataset) -> Self {
        self.source = Some(EngineSource::DatasetRef(dataset));
        self
    }

    /// Adopts a prebuilt index (taking ownership). Storage options must not
    /// be combined with this source — the index already made those choices.
    pub fn index(mut self, index: TopKIndex) -> Self {
        self.source = Some(EngineSource::Index(Arc::new(index)));
        self
    }

    /// Adopts an already shared index handle (see
    /// [`IndexBuilder::build_shared`](ir_storage::IndexBuilder::build_shared)).
    pub fn shared_index(mut self, index: Arc<TopKIndex>) -> Self {
        self.source = Some(EngineSource::Index(index));
        self
    }

    /// Serves queries from a snapshot saved by [`IrEngine::save_snapshot`]
    /// — cold start becomes a validate-header-and-serve operation with no
    /// build pass (see
    /// [`IndexBuilder::open_snapshot`](ir_storage::IndexBuilder::open_snapshot)).
    ///
    /// Storage options *do* compose with this source (unlike a prebuilt
    /// index): [`IrEngineBuilder::backend`] selects how the snapshot file
    /// is served — its kind only, any path on the variant is ignored — and
    /// pool capacity, I/O model, retry policy and fault plan configure the
    /// serving stack. A configured fault plan is armed *before* the trailer
    /// read, so injected faults during the open surface as typed
    /// [`EngineError::SnapshotOpen`] errors.
    pub fn open_snapshot(mut self, dir: impl Into<PathBuf>) -> Self {
        self.source = Some(EngineSource::Snapshot(dir.into()));
        self
    }

    /// Selects the storage backend for the index built from a dataset
    /// (default: memory).
    pub fn backend(mut self, backend: StorageBackend) -> Self {
        self.backend = backend;
        self.storage_knobs_set = true;
        self
    }

    /// Shorthand for a disk-backed page store under `dir`.
    pub fn on_disk(self, dir: impl Into<PathBuf>) -> Self {
        self.backend(StorageBackend::Disk(dir.into()))
    }

    /// Shorthand for a memory-mapped page store under `dir`.
    ///
    /// Requires `ir-storage`'s `mmap` cargo feature (re-exported as this
    /// crate's `mmap` feature); without it [`IrEngineBuilder::build`]
    /// returns a descriptive error instead of an engine.
    pub fn on_mmap(self, dir: impl Into<PathBuf>) -> Self {
        self.backend(StorageBackend::Mmap(dir.into()))
    }

    /// Sets the buffer-pool budget in pages for the index built from a
    /// dataset.
    pub fn pool_capacity(mut self, pages: usize) -> Self {
        self.pool_capacity = Some(pages);
        self.storage_knobs_set = true;
        self
    }

    /// Sets the simulated I/O latency model for the index built from a
    /// dataset.
    pub fn io_config(mut self, io_config: IoConfig) -> Self {
        self.io_config = Some(io_config);
        self.storage_knobs_set = true;
        self
    }

    /// Sets the buffer pool's retry policy for transient storage faults
    /// (default: [`RetryPolicy::default`] — 3 attempts with deterministic
    /// exponential backoff).
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry_policy = Some(policy);
        self.storage_knobs_set = true;
        self
    }

    /// Wraps the engine's page store in a fault-injecting proxy executing
    /// `plan` (see [`FaultPlan`]). The injector is armed only *after* the
    /// index is built, so faults strike served queries rather than the
    /// build itself.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self.storage_knobs_set = true;
        self
    }

    /// Sets the default region configuration queries run with (overridable
    /// per call via [`IrEngine::query_with`]).
    pub fn config(mut self, config: RegionConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the TA configuration used for the top-k phase of every query.
    pub fn ta_config(mut self, ta_config: TaConfig) -> Self {
        self.ta_config = ta_config;
        self
    }

    /// Sets the worker count for [`IrEngine::query_batch`] (clamped to at
    /// least 1). Regions and deterministic counters are identical for every
    /// value.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Applies a whole [`EnginePolicy`]: the default config, the worker
    /// count and (when present) the fault plan. The policy's `backend`
    /// field is *not* applied — it is descriptive metadata (a file/mmap
    /// backend needs a path; see [`EnginePolicy::backend`]).
    pub fn policy(self, policy: EnginePolicy) -> Self {
        let builder = self.config(policy.config).threads(policy.threads);
        match policy.fault_plan {
            Some(plan) => builder.fault_plan(plan),
            None => builder,
        }
    }

    /// Loads the engine policy from a JSON file (see
    /// [`EnginePolicy::from_json_file`]).
    pub fn policy_from_json_file(self, path: impl AsRef<Path>) -> EngineResult<Self> {
        Ok(self.policy(EnginePolicy::from_json_file(path)?))
    }

    /// Builds the engine: constructs the index if a dataset was given, then
    /// wraps everything into an owned, shareable handle.
    pub fn build(self) -> EngineResult<IrEngine> {
        let IrEngineBuilder {
            source,
            backend,
            pool_capacity,
            io_config,
            retry_policy,
            fault_plan,
            storage_knobs_set,
            config,
            ta_config,
            threads,
        } = self;
        let index_builder = || {
            let mut builder = IndexBuilder::new()
                .backend(backend.clone())
                .fault_plan(fault_plan.clone());
            if let Some(pages) = pool_capacity {
                builder = builder.pool_capacity(pages);
            }
            if let Some(io_config) = io_config {
                builder = builder.io_config(io_config);
            }
            if let Some(retry) = retry_policy {
                builder = builder.retry_policy(retry);
            }
            builder
        };
        let build_index = |dataset: &Dataset| -> EngineResult<Arc<TopKIndex>> {
            if dataset.cardinality() == 0 {
                return Err(EngineError::EmptyDataset);
            }
            Ok(index_builder().build_shared(dataset)?)
        };
        let index = match source {
            None => return Err(EngineError::NoSource),
            Some(EngineSource::Dataset(dataset)) => build_index(&dataset)?,
            Some(EngineSource::DatasetRef(dataset)) => build_index(dataset)?,
            Some(EngineSource::Snapshot(dir)) => {
                let index = index_builder()
                    .open_snapshot(&dir)
                    .map(Arc::new)
                    .map_err(|source| EngineError::SnapshotOpen { dir, source })?;
                if index.cardinality() == 0 {
                    return Err(EngineError::EmptyDataset);
                }
                index
            }
            Some(EngineSource::Index(index)) => {
                if storage_knobs_set {
                    return Err(EngineError::Policy(
                        "storage options (backend, pool capacity, I/O model) apply to an index \
                         built from a dataset; a prebuilt index already made those choices"
                            .to_string(),
                    ));
                }
                if index.cardinality() == 0 {
                    return Err(EngineError::EmptyDataset);
                }
                index
            }
        };
        Ok(IrEngine {
            index,
            config,
            ta_config,
            threads,
            health: Arc::new(EngineHealth::default()),
        })
    }
}

/// Cumulative failure accounting shared by every handle onto one engine
/// (clones, [`IrEngine::with_config`], subscriptions). Interior-mutable so
/// `&self` query paths can record outcomes.
#[derive(Debug, Default)]
struct EngineHealth {
    queries_ok: AtomicU64,
    queries_failed: AtomicU64,
    worker_panics: AtomicU64,
    corruption_errors: AtomicU64,
    retries_exhausted: AtomicU64,
    fleet_local_answers: AtomicU64,
    fleet_recomputes: AtomicU64,
    fleet_batches: AtomicU64,
    shard_solves: AtomicU64,
    shard_partials: AtomicU64,
    updates_applied: AtomicU64,
    regions_punctured: AtomicU64,
    regions_survived: AtomicU64,
}

/// A point-in-time view of an engine's cumulative health counters
/// ([`IrEngine::health`]).
///
/// The first five counters track engine *operations* (a batch counts once);
/// the retry counters come from the buffer pool's I/O accounting and count
/// individual retried page transfers. All counters are cumulative since the
/// engine was built, except the retry counters which
/// [`IrEngine::cold_start`] resets along with the rest of the I/O stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineHealthSnapshot {
    /// Operations (queries, batches, subscription refreshes) that succeeded.
    pub queries_ok: u64,
    /// Operations that returned an error of any kind.
    pub queries_failed: u64,
    /// Failed operations whose error was [`IrError::WorkerPanicked`] — a
    /// contained panic, in a worker or caught at the engine boundary.
    pub worker_panics: u64,
    /// Failed operations whose error was [`IrError::Corruption`].
    pub corruption_errors: u64,
    /// Failed operations whose error was [`IrError::RetryExhausted`].
    pub retries_exhausted: u64,
    /// Page reads that needed at least one retry (transient faults healed
    /// invisibly by the pool's [`RetryPolicy`]).
    pub read_retries: u64,
    /// Page writes that needed at least one retry.
    pub write_retries: u64,
    /// Drift events a [`crate::fleet::SubscriptionManager`] answered
    /// locally from a cached region report (no I/O).
    pub fleet_local_answers: u64,
    /// Drift events a fleet manager answered by a batched recompute.
    pub fleet_recomputes: u64,
    /// Recompute batches a fleet manager flushed through
    /// [`IrEngine::query_batch`].
    pub fleet_batches: u64,
    /// Work units (whole queries or single dimensions, depending on the
    /// partition mode) this engine solved as a cluster shard node.
    pub shard_solves: u64,
    /// Partial-region messages this engine's shard node sent back to a
    /// cluster coordinator.
    pub shard_partials: u64,
    /// Logical tuple updates applied through [`IrEngine::apply_updates`]
    /// (and the [`IrEngine::insert`] / [`IrEngine::delete`] /
    /// [`IrEngine::update_score`] conveniences).
    pub updates_applied: u64,
    /// Cached regions (standalone subscriptions or fleet members) an update
    /// punctured, forcing a recompute.
    pub regions_punctured: u64,
    /// Cached regions that provably survived an update batch untouched.
    pub regions_survived: u64,
}

impl EngineHealthSnapshot {
    /// `true` while the engine has never seen a failed operation.
    pub fn is_unblemished(&self) -> bool {
        self.queries_failed == 0
    }
}

/// An owned immutable-regions engine: the single front door for serving
/// region computations.
///
/// The engine holds the [`TopKIndex`] (inverted lists, tuple file, buffer
/// pool) behind [`Arc`], so clones are cheap handles onto the same warm
/// state and the type is `Send + Sync + Clone` with no lifetimes. See the
/// [module docs](self) for the three call styles.
#[derive(Clone)]
pub struct IrEngine {
    index: Arc<TopKIndex>,
    config: RegionConfig,
    ta_config: TaConfig,
    threads: usize,
    health: Arc<EngineHealth>,
}

impl fmt::Debug for IrEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IrEngine")
            .field("cardinality", &self.index.cardinality())
            .field("dimensionality", &self.index.dimensionality())
            .field("config", &self.config)
            .field("threads", &self.threads)
            .field("health", &self.health())
            .finish()
    }
}

impl IrEngine {
    /// Starts building an engine.
    pub fn builder<'d>() -> IrEngineBuilder<'d> {
        IrEngineBuilder::default()
    }

    /// The shared index the engine serves from (for storage-level control:
    /// cache warm-up, I/O accounting, direct cursor access).
    pub fn index(&self) -> &Arc<TopKIndex> {
        &self.index
    }

    /// The default region configuration.
    pub fn config(&self) -> RegionConfig {
        self.config
    }

    /// The worker count used by [`IrEngine::query_batch`].
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The engine's serializable policy (default config, worker count, the
    /// backend the index was built on and the fault plan its device
    /// executes, if any).
    pub fn policy(&self) -> EnginePolicy {
        EnginePolicy {
            config: self.config,
            threads: self.threads,
            backend: self.index.backend_kind(),
            fault_plan: self.index.fault_plan().cloned(),
            cold_start: self.index.cold_start_info(),
            cluster: None,
        }
    }

    /// Cumulative health counters: operations served and failed (by
    /// failure class) plus the pool's retry counts. Shared by every handle
    /// onto the same engine.
    pub fn health(&self) -> EngineHealthSnapshot {
        let io = self.index.io_snapshot();
        EngineHealthSnapshot {
            queries_ok: self.health.queries_ok.load(Ordering::Relaxed),
            queries_failed: self.health.queries_failed.load(Ordering::Relaxed),
            worker_panics: self.health.worker_panics.load(Ordering::Relaxed),
            corruption_errors: self.health.corruption_errors.load(Ordering::Relaxed),
            retries_exhausted: self.health.retries_exhausted.load(Ordering::Relaxed),
            read_retries: io.read_retries,
            write_retries: io.write_retries,
            fleet_local_answers: self.health.fleet_local_answers.load(Ordering::Relaxed),
            fleet_recomputes: self.health.fleet_recomputes.load(Ordering::Relaxed),
            fleet_batches: self.health.fleet_batches.load(Ordering::Relaxed),
            shard_solves: self.health.shard_solves.load(Ordering::Relaxed),
            shard_partials: self.health.shard_partials.load(Ordering::Relaxed),
            updates_applied: self.health.updates_applied.load(Ordering::Relaxed),
            regions_punctured: self.health.regions_punctured.load(Ordering::Relaxed),
            regions_survived: self.health.regions_survived.load(Ordering::Relaxed),
        }
    }

    /// Records fleet-manager traffic in the shared health counters:
    /// `local` drift events answered from cached regions, `recomputed`
    /// events that needed a batched refresh, and `batches` flushes through
    /// the worker pool.
    pub(crate) fn note_fleet_traffic(&self, local: u64, recomputed: u64, batches: u64) {
        self.health
            .fleet_local_answers
            .fetch_add(local, Ordering::Relaxed);
        self.health
            .fleet_recomputes
            .fetch_add(recomputed, Ordering::Relaxed);
        self.health
            .fleet_batches
            .fetch_add(batches, Ordering::Relaxed);
    }

    /// Records region-survival outcomes of an update screening (standalone
    /// subscriptions and fleet members alike) in the shared health counters.
    pub(crate) fn note_region_survival(&self, survived: u64, punctured: u64) {
        self.health
            .regions_survived
            .fetch_add(survived, Ordering::Relaxed);
        self.health
            .regions_punctured
            .fetch_add(punctured, Ordering::Relaxed);
    }

    /// Records cluster shard-node traffic in the shared health counters:
    /// `solves` work units answered and `partials` partial-region messages
    /// sent to a coordinator. Public because the `ir-cluster` crate sits
    /// above this one.
    pub fn note_shard_traffic(&self, solves: u64, partials: u64) {
        self.health
            .shard_solves
            .fetch_add(solves, Ordering::Relaxed);
        self.health
            .shard_partials
            .fetch_add(partials, Ordering::Relaxed);
    }

    /// Runs one engine operation with failure containment: panics anywhere
    /// below (a poisoned solver, an injected device panic) are caught at
    /// this boundary and surfaced as typed
    /// [`IrError::WorkerPanicked`] errors, and the outcome — success or any
    /// failure, classified — is recorded in the engine's health counters.
    /// The engine stays fully serviceable afterwards: all shared state is
    /// lock-free or uses non-poisoning locks.
    fn run_guarded<T>(&self, job: &str, op: impl FnOnce() -> EngineResult<T>) -> EngineResult<T> {
        let result = match catch_unwind(AssertUnwindSafe(op)) {
            Ok(result) => result,
            Err(payload) => Err(EngineError::Core(IrError::WorkerPanicked {
                job: job.to_string(),
                message: ir_core::parallel::panic_message(payload.as_ref()),
            })),
        };
        match &result {
            Ok(_) => {
                self.health.queries_ok.fetch_add(1, Ordering::Relaxed);
            }
            Err(err) => {
                self.health.queries_failed.fetch_add(1, Ordering::Relaxed);
                match err {
                    EngineError::Core(IrError::WorkerPanicked { .. }) => {
                        self.health.worker_panics.fetch_add(1, Ordering::Relaxed);
                    }
                    EngineError::Core(IrError::Corruption { .. }) => {
                        self.health
                            .corruption_errors
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    EngineError::Core(IrError::RetryExhausted { .. }) => {
                        self.health
                            .retries_exhausted
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
            }
        }
        result
    }

    /// Which page-store backend the engine serves from.
    pub fn backend_kind(&self) -> BackendKind {
        self.index.backend_kind()
    }

    /// A handle onto the same warm state with a different default region
    /// configuration.
    pub fn with_config(&self, config: RegionConfig) -> IrEngine {
        IrEngine {
            config,
            ..self.clone()
        }
    }

    /// A handle onto the same warm state with a different worker count
    /// (clamped to at least 1).
    pub fn with_threads(&self, threads: usize) -> IrEngine {
        IrEngine {
            threads: threads.max(1),
            ..self.clone()
        }
    }

    /// Clears the buffer-pool cache and I/O counters — a fully cold start
    /// (what the experiment harness does between measured queries).
    pub fn cold_start(&self) {
        self.index.cold_start();
    }

    /// How this engine's index came up (built vs snapshot-opened) and what
    /// deterministic work that cost — the numbers
    /// `BENCH_coldstart.json` compares across sources and backends.
    pub fn cold_start_info(&self) -> ColdStartInfo {
        self.index.cold_start_info()
    }

    /// Saves the engine's index as a versioned snapshot under `dir`, for a
    /// later [`IrEngineBuilder::open_snapshot`] to serve without rebuilding.
    ///
    /// Every data page is copied through the engine's buffer pool (so the
    /// copy is checksum-verified and I/O-accounted). Do not save into the
    /// directory a disk/mmap engine is currently serving from — see
    /// [`TopKIndex::save_snapshot`].
    pub fn save_snapshot(&self, dir: impl Into<PathBuf>) -> EngineResult<SnapshotSummary> {
        let dir = dir.into();
        self.index
            .save_snapshot(&dir)
            .map_err(|source| EngineError::SnapshotSave { dir, source })
    }

    /// Validates a query against the engine's index without running it,
    /// returning the typed error a malformed request deserves.
    pub fn validate(&self, query: &QueryVector) -> EngineResult<()> {
        query.validate_against(self.index.dimensionality())?;
        if query.k() > self.index.cardinality() {
            return Err(EngineError::KTooLarge {
                k: query.k(),
                cardinality: self.index.cardinality(),
            });
        }
        Ok(())
    }

    /// Prepares a full computation handle for one query: runs the top-k
    /// phase and returns the lifetime-free [`OwnedRegionComputation`], for
    /// callers that need the TA internals or per-dimension parallel solves
    /// in addition to the report.
    pub fn computation(&self, query: &QueryVector) -> EngineResult<OwnedRegionComputation> {
        self.computation_with(query, self.config)
    }

    /// [`IrEngine::computation`] with an explicit region configuration.
    pub fn computation_with(
        &self,
        query: &QueryVector,
        config: RegionConfig,
    ) -> EngineResult<OwnedRegionComputation> {
        self.run_guarded("computation", || self.computation_untracked(query, config))
    }

    /// The unguarded body of [`IrEngine::computation_with`], for composite
    /// operations that wrap a larger region in one [`IrEngine::run_guarded`]
    /// scope (so each operation is counted exactly once).
    fn computation_untracked(
        &self,
        query: &QueryVector,
        config: RegionConfig,
    ) -> EngineResult<OwnedRegionComputation> {
        self.validate(query)?;
        Ok(RegionComputation::with_ta_config_shared(
            Arc::clone(&self.index),
            query,
            config,
            &self.ta_config,
        )?)
    }

    /// Computes the immutable regions of one query with the engine's
    /// default configuration. The report is bit-identical to the low-level
    /// sequential path ([`RegionComputation::compute`]).
    pub fn query(&self, query: &QueryVector) -> EngineResult<RegionReport> {
        self.query_with(query, self.config)
    }

    /// [`IrEngine::query`] with an explicit region configuration.
    pub fn query_with(
        &self,
        query: &QueryVector,
        config: RegionConfig,
    ) -> EngineResult<RegionReport> {
        self.run_guarded("query", || {
            let mut computation = self.computation_untracked(query, config)?;
            Ok(computation.compute()?)
        })
    }

    /// Convenience: builds the query from `(dimension, weight)` pairs and
    /// computes its regions. Malformed weight sets surface as typed errors
    /// ([`EngineError::ZeroWeightQuery`] when no positive weight remains).
    pub fn query_pairs(
        &self,
        pairs: impl IntoIterator<Item = (u32, f64)>,
        k: usize,
    ) -> EngineResult<RegionReport> {
        let query = QueryVector::new(pairs, k)?;
        self.query(&query)
    }

    /// Runs a batch of queries over the engine's worker pool, sharing the
    /// warm buffer pool. Reports come back in query order and are identical
    /// to running each query sequentially, for every worker count.
    pub fn query_batch(&self, queries: &[QueryVector]) -> EngineResult<Vec<RegionReport>> {
        self.query_batch_detailed(queries)
            .map(|outcome| outcome.reports)
    }

    /// [`IrEngine::query_batch`], also returning per-worker I/O tallies and
    /// the batch wall-clock time.
    pub fn query_batch_detailed(&self, queries: &[QueryVector]) -> EngineResult<BatchOutcome> {
        self.run_guarded("query batch", || {
            for query in queries {
                self.validate(query)?;
            }
            let batch = BatchRegionComputation::new_shared(Arc::clone(&self.index), self.config)
                .with_threads(self.threads)
                .with_ta_config(self.ta_config);
            Ok(batch.run_detailed(queries)?)
        })
    }

    /// Applies a batch of logical updates to the live index — the dynamic
    /// half of the paper's system model. The index is maintained **in
    /// place** (tombstones, in-place rewrites, appends; affected inverted
    /// lists rewritten once), never rebuilt; the maintained index is
    /// logically identical to one freshly built from the mutated dataset,
    /// so every query issued after this returns is answered exactly as a
    /// full recompute would.
    ///
    /// The whole batch is validated first — a malformed update (unknown
    /// tuple, out-of-range value) rejects the batch with a typed error
    /// before any page is touched. Returns one [`AppliedUpdate`] per input
    /// (the touched tuple plus its vector before and after), which is what
    /// [`Subscription::absorb_updates`] and the fleet manager consume to
    /// decide which cached regions survived.
    ///
    /// Mutations are single-writer and not linearizable with in-flight
    /// queries: a query racing this call sees either the old or the new
    /// index, never a torn one.
    ///
    /// ```
    /// use immutable_regions::prelude::*;
    /// use immutable_regions::types::TupleUpdate;
    ///
    /// let engine = IrEngine::builder()
    ///     .dataset(Dataset::running_example())
    ///     .build()?;
    /// let query = QueryVector::running_example();
    /// assert_eq!(engine.query(&query)?.current_result(), [TupleId(1), TupleId(0)]);
    ///
    /// // Insert a tuple that dominates everything: it takes rank 1.
    /// let applied = engine.apply_updates(&[TupleUpdate::Insert {
    ///     vector: SparseVector::from_pairs([(0, 0.99), (1, 0.99)])?,
    /// }])?;
    /// assert_eq!(applied[0].tuple, TupleId(4));
    /// assert_eq!(engine.query(&query)?.current_result(), [TupleId(4), TupleId(1)]);
    ///
    /// // Deleting it restores the original result exactly.
    /// engine.delete(TupleId(4))?;
    /// assert_eq!(engine.query(&query)?.current_result(), [TupleId(1), TupleId(0)]);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn apply_updates(&self, updates: &[TupleUpdate]) -> EngineResult<Vec<AppliedUpdate>> {
        self.run_guarded("apply updates", || {
            let applied = self.index.apply_updates(updates)?;
            self.health
                .updates_applied
                .fetch_add(applied.len() as u64, Ordering::Relaxed);
            Ok(applied)
        })
    }

    /// Inserts a new tuple (dense id assignment: the new tuple's id is the
    /// previous cardinality). See [`IrEngine::apply_updates`].
    pub fn insert(&self, vector: SparseVector) -> EngineResult<AppliedUpdate> {
        self.apply_one(TupleUpdate::Insert { vector })
    }

    /// Deletes a tuple. The id stays addressable and reads back as the
    /// empty vector (ids are never reused). See [`IrEngine::apply_updates`].
    pub fn delete(&self, tuple: TupleId) -> EngineResult<AppliedUpdate> {
        self.apply_one(TupleUpdate::Delete { tuple })
    }

    /// Sets one coordinate of one tuple (`0.0` removes the coordinate). See
    /// [`IrEngine::apply_updates`].
    pub fn update_score(
        &self,
        tuple: TupleId,
        dim: DimId,
        value: f64,
    ) -> EngineResult<AppliedUpdate> {
        self.apply_one(TupleUpdate::UpdateScore { tuple, dim, value })
    }

    fn apply_one(&self, update: TupleUpdate) -> EngineResult<AppliedUpdate> {
        let mut applied = self.apply_updates(std::slice::from_ref(&update))?;
        Ok(applied.pop().expect("one update in, one applied out"))
    }

    /// Cumulative index-maintenance counters (updates, batches, list
    /// rewrites, tuple relocations, maintenance I/O — accounted separately
    /// from query I/O).
    pub fn maintenance_stats(&self) -> MaintenanceStatsSnapshot {
        self.index.maintenance_stats()
    }

    /// Subscribes a query: computes its result and regions once and returns
    /// a [`Subscription`] that answers weight-drift questions from the
    /// cached report, recomputing only on region exit.
    pub fn subscribe(&self, query: QueryVector) -> EngineResult<Subscription> {
        let (result, report) = self.run_guarded("subscribe", || {
            let mut computation = self.computation_untracked(&query, self.config)?;
            let report = computation.compute()?;
            Ok((computation.result(), report))
        })?;
        Ok(Subscription {
            engine: self.clone(),
            query,
            result,
            report,
            refreshes: 0,
            cache_hits: 0,
        })
    }
}

/// A subscribed query (the paper's interactive weight-tuning loop): holds
/// the last computed [`RegionReport`] and the engine handle needed to
/// refresh it.
///
/// The subscription answers [`Subscription::is_immutable_under`] purely
/// from the cached regions — no I/O, no recomputation — and
/// [`Subscription::update`] recomputes only when the drifted weights
/// actually leave the reported immutable region.
pub struct Subscription {
    engine: IrEngine,
    query: QueryVector,
    result: TopKResult,
    report: RegionReport,
    refreshes: u64,
    cache_hits: u64,
}

impl fmt::Debug for Subscription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Subscription")
            .field("query", &self.query)
            .field("result", &self.result.ids())
            .field("refreshes", &self.refreshes)
            .field("cache_hits", &self.cache_hits)
            .finish()
    }
}

impl Subscription {
    /// The currently subscribed query (the anchor the cached regions are
    /// relative to).
    pub fn query(&self) -> &QueryVector {
        &self.query
    }

    /// The cached top-k result of the subscribed query.
    pub fn result(&self) -> &TopKResult {
        &self.result
    }

    /// The cached region report of the subscribed query.
    pub fn report(&self) -> &RegionReport {
        &self.report
    }

    /// How many times [`Subscription::update`] recomputed.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// How many times [`Subscription::update`] was served from the cached
    /// regions.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Decides — locally, from the cached report — whether the result is
    /// guaranteed unchanged under `new_weights`.
    ///
    /// `true` requires that `new_weights` deviates from the subscribed
    /// query in **at most one** dimension (the paper's model: one slider
    /// moves while the others stay), with that deviation strictly inside
    /// the dimension's immutable region. Everything else — a changed `k`,
    /// several deviating weights, a new query dimension, a deviation at or
    /// past a region boundary — returns `false`, which is the conservative
    /// answer: the caller recomputes and never serves a stale result.
    pub fn is_immutable_under(&self, new_weights: &QueryVector) -> bool {
        immutable_under(&self.query, &self.report, new_weights)
    }

    /// Drives the subscription to `new_weights`: a no-op returning
    /// `Ok(false)` while the weights stay inside the reported region, a
    /// recompute (re-anchoring the subscription at `new_weights`) returning
    /// `Ok(true)` once they leave it.
    /// A failed refresh (fault, contained panic) leaves the subscription
    /// anchored at its previous query with the previous cached report — the
    /// caller can retry `update` once the device heals.
    pub fn update(&mut self, new_weights: &QueryVector) -> EngineResult<bool> {
        if self.is_immutable_under(new_weights) {
            self.cache_hits += 1;
            return Ok(false);
        }
        let engine = &self.engine;
        let (result, report) = engine.run_guarded("subscription refresh", || {
            let mut computation = engine.computation_untracked(new_weights, engine.config)?;
            let report = computation.compute()?;
            Ok((computation.result(), report))
        })?;
        self.report = report;
        self.result = result;
        self.query = new_weights.clone();
        self.refreshes += 1;
        Ok(true)
    }

    /// Maintains the subscription across a batch of applied data updates
    /// (the return value of [`IrEngine::apply_updates`]): screens each
    /// update with the kinetic line test
    /// ([`ir_core::invalidate::update_impact`]) and recomputes — at the
    /// same anchor query — only if some update punctures the cached
    /// regions. Returns `Ok(true)` when a recompute happened.
    ///
    /// Survival is a proof: when this returns `Ok(false)` the cached report
    /// is byte-identical to what a full recompute on the mutated dataset
    /// would produce. A failed recompute (fault, contained panic) leaves
    /// the cached report in place and the error surfaces — retry once the
    /// device heals; the screening is deterministic and will puncture
    /// again.
    pub fn absorb_updates(&mut self, applied: &[AppliedUpdate]) -> EngineResult<bool> {
        let mut punctured = false;
        for update in applied {
            let impact = ir_core::invalidate::update_impact(
                &self.query,
                &self.report,
                update.tuple,
                &update.old_vector,
                &update.new_vector,
                |id| self.engine.index.fetch_tuple(id),
            )
            .map_err(EngineError::Core)?;
            if !impact.survived() {
                punctured = true;
                break;
            }
        }
        if !punctured {
            self.engine.note_region_survival(1, 0);
            return Ok(false);
        }
        self.engine.note_region_survival(0, 1);
        let engine = &self.engine;
        let query = &self.query;
        let (result, report) = engine.run_guarded("subscription update absorb", || {
            let mut computation = engine.computation_untracked(query, engine.config)?;
            let report = computation.compute()?;
            Ok((computation.result(), report))
        })?;
        self.result = result;
        self.report = report;
        self.refreshes += 1;
        Ok(true)
    }
}

/// The local immutability check shared by [`Subscription`] and the
/// subscription fleet ([`crate::fleet::SubscriptionManager`]): is the
/// result anchored at `anchor` (with cached `report`) guaranteed unchanged
/// under `new_weights`?
///
/// Allocation-free: the two sparse weight vectors are merge-walked in one
/// pass over their sorted entry slices — this runs once per drift event
/// across a fleet of millions, so it must not touch the heap.
pub(crate) fn immutable_under(
    anchor: &QueryVector,
    report: &RegionReport,
    new_weights: &QueryVector,
) -> bool {
    if new_weights.k() != anchor.k() {
        return false;
    }
    let a = anchor.weights().entries();
    let b = new_weights.weights().entries();
    let (mut i, mut j) = (0usize, 0usize);
    let mut deviation: Option<(DimId, f64)> = None;
    loop {
        // delta = new - old; a dimension absent from a vector weighs 0.
        let (dim, delta) = match (a.get(i), b.get(j)) {
            (None, None) => break,
            (Some(&(dim, old)), None) => {
                i += 1;
                (dim, -old)
            }
            (None, Some(&(dim, new))) => {
                j += 1;
                (dim, new)
            }
            (Some(&(da, old)), Some(&(db, new))) => {
                if da < db {
                    i += 1;
                    (da, -old)
                } else if db < da {
                    j += 1;
                    (db, new)
                } else {
                    i += 1;
                    j += 1;
                    (da, new - old)
                }
            }
        };
        if delta != 0.0 {
            if deviation.is_some() {
                return false;
            }
            deviation = Some((dim, delta));
        }
    }
    match deviation {
        None => true,
        Some((dim, delta)) => match report.for_dim(dim) {
            // Strict interior: at the boundary itself the perturbation
            // occurs, so boundary hits count as exits.
            Some(regions) => regions.immutable.lo < delta && delta < regions.immutable.hi,
            None => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_types::TupleId;

    fn engine() -> IrEngine {
        IrEngine::builder()
            .dataset(Dataset::running_example())
            .build()
            .unwrap()
    }

    #[test]
    fn engine_handles_are_send_sync_clone() {
        fn assert_handle<T: Send + Sync + Clone + 'static>() {}
        assert_handle::<IrEngine>();
    }

    #[test]
    fn query_matches_running_example() {
        let report = engine().query(&QueryVector::running_example()).unwrap();
        let d0 = report.for_dim(DimId(0)).unwrap();
        assert!((d0.immutable.lo + 16.0 / 35.0).abs() < 1e-9);
        assert!((d0.immutable.hi - 0.1).abs() < 1e-9);
    }

    #[test]
    fn subscription_serves_drift_inside_region_from_cache() {
        let engine = engine();
        let query = QueryVector::running_example();
        let mut subscription = engine.subscribe(query.clone()).unwrap();
        assert_eq!(
            subscription.result().ids(),
            vec![TupleId(1), TupleId(0)],
            "running example top-2"
        );

        // Inside IR_1 = (-16/35, 0.1): cache hit, no recompute.
        let inside = query.with_weight_shift(DimId(0), 0.05).unwrap();
        assert!(subscription.is_immutable_under(&inside));
        assert!(!subscription.update(&inside).unwrap());
        assert_eq!(subscription.cache_hits(), 1);
        assert_eq!(subscription.refreshes(), 0);

        // Past the upper boundary at +0.1: recompute and re-anchor.
        let outside = query.with_weight_shift(DimId(0), 0.15).unwrap();
        assert!(!subscription.is_immutable_under(&outside));
        assert!(subscription.update(&outside).unwrap());
        assert_eq!(subscription.refreshes(), 1);
        assert_eq!(
            subscription.result().ids(),
            vec![TupleId(0), TupleId(1)],
            "crossing +0.1 swaps d1 and d2"
        );
        assert!((subscription.query().weight(DimId(0)) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn multi_dimension_drift_is_conservative() {
        let engine = engine();
        let query = QueryVector::running_example();
        let subscription = engine.subscribe(query.clone()).unwrap();
        // Both weights move a hair — per-dimension regions don't compose,
        // so the subscription must not claim immutability.
        let both = QueryVector::new([(0, 0.81), (1, 0.51)], 2).unwrap();
        assert!(!subscription.is_immutable_under(&both));
        // A changed k is never immutable either.
        let other_k = query.with_k(1).unwrap();
        assert!(!subscription.is_immutable_under(&other_k));
    }

    #[test]
    fn policy_round_trips_through_json() {
        let policy = EnginePolicy {
            config: RegionConfig::with_phi(ir_core::Algorithm::Prune, 3).composition_only(),
            threads: 4,
            backend: BackendKind::Mmap,
            fault_plan: Some(FaultPlan::transient_reads(7, 3, 100)),
            cold_start: ir_storage::ColdStartInfo {
                source: ir_storage::ColdStartSource::Snapshot,
                pages: 17,
                bytes: 4242,
            },
            cluster: Some(ClusterTopology {
                shards: 4,
                partition: PartitionMode::ByQuery,
                seed: 0xC1_05_7E,
            }),
        };
        let json = policy.to_json();
        assert_eq!(EnginePolicy::from_json(&json).unwrap(), policy);
        assert!(matches!(
            EnginePolicy::from_json("not json"),
            Err(EngineError::Policy(_))
        ));
        // The default policy stamps an explicit null — the stable shape the
        // committed bench baselines rely on.
        assert!(
            EnginePolicy::default()
                .to_json()
                .contains("\"fault_plan\":null"),
            "{}",
            EnginePolicy::default().to_json()
        );
        assert!(
            EnginePolicy::default()
                .to_json()
                .contains("\"cluster\":null"),
            "{}",
            EnginePolicy::default().to_json()
        );
    }

    #[test]
    fn health_counts_and_classifies_outcomes() {
        let engine = engine();
        assert_eq!(engine.health(), EngineHealthSnapshot::default());
        let _ = engine.query(&QueryVector::running_example()).unwrap();
        // k too large: a failed operation, but not a storage-failure class.
        let big_k = QueryVector::running_example().with_k(100).unwrap();
        assert!(engine.query(&big_k).is_err());
        let health = engine.health();
        assert_eq!(health.queries_ok, 1);
        assert_eq!(health.queries_failed, 1);
        assert_eq!(health.worker_panics, 0);
        assert_eq!(health.corruption_errors, 0);
        assert_eq!(health.retries_exhausted, 0);
        assert!(!health.is_unblemished());
        // Handles share the same counters.
        assert_eq!(engine.clone().health(), health);
    }

    #[test]
    fn fault_plan_flows_from_policy_to_device_and_back() {
        let plan = FaultPlan::device_outage(2, None);
        let policy = EnginePolicy {
            fault_plan: Some(plan.clone()),
            ..EnginePolicy::default()
        };
        let chaos = IrEngine::builder()
            .dataset(Dataset::running_example())
            .policy(policy)
            .build()
            .unwrap();
        assert_eq!(chaos.policy().fault_plan.as_ref(), Some(&plan));
        assert!(chaos.index().fault_injector().unwrap().is_armed());
        // A fault-free engine stamps null.
        assert_eq!(engine().policy().fault_plan, None);
    }

    #[test]
    fn engine_survives_a_device_outage_and_reports_typed_errors() {
        // Read op 0 fails permanently, everything after succeeds; no
        // retry policy so the error surfaces directly.
        let engine = IrEngine::builder()
            .dataset(Dataset::running_example())
            .fault_plan(FaultPlan::device_outage(0, Some(1)))
            .retry_policy(RetryPolicy::none())
            .pool_capacity(1)
            .build()
            .unwrap();
        let query = QueryVector::running_example();
        let err = engine.query(&query).map(|_| ()).unwrap_err();
        assert!(matches!(err, EngineError::Core(_)), "{err}");
        assert!(err.to_string().contains("injected device failure"), "{err}");
        // The engine answers correctly on the next query.
        let report = engine.query(&query).unwrap();
        let d0 = report.for_dim(DimId(0)).unwrap();
        assert!((d0.immutable.lo + 16.0 / 35.0).abs() < 1e-9);
        let health = engine.health();
        assert_eq!(health.queries_failed, 1);
        assert_eq!(health.queries_ok, 1);
    }

    #[test]
    fn policy_reports_the_built_backend() {
        let dir = tempfile::tempdir().unwrap();
        let disk_engine = IrEngine::builder()
            .dataset(Dataset::running_example())
            .on_disk(dir.path())
            .build()
            .unwrap();
        assert_eq!(disk_engine.backend_kind(), BackendKind::File);
        assert_eq!(disk_engine.policy().backend, BackendKind::File);
        // The default engine serves from memory.
        assert_eq!(engine().policy().backend, BackendKind::Mem);
    }

    #[cfg(not(feature = "mmap"))]
    #[test]
    fn mmap_backend_without_feature_is_a_typed_error() {
        let dir = tempfile::tempdir().unwrap();
        let err = IrEngine::builder()
            .dataset(Dataset::running_example())
            .on_mmap(dir.path())
            .build()
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("mmap"), "{err}");
    }

    #[cfg(feature = "mmap")]
    #[test]
    fn mmap_backend_serves_the_running_example() {
        let dir = tempfile::tempdir().unwrap();
        let engine = IrEngine::builder()
            .dataset(Dataset::running_example())
            .on_mmap(dir.path())
            .build()
            .unwrap();
        assert_eq!(engine.backend_kind(), BackendKind::Mmap);
        let report = engine.query(&QueryVector::running_example()).unwrap();
        let d0 = report.for_dim(DimId(0)).unwrap();
        assert!((d0.immutable.lo + 16.0 / 35.0).abs() < 1e-9);
        assert!((d0.immutable.hi - 0.1).abs() < 1e-9);
    }

    #[test]
    fn dataset_ref_borrows_instead_of_cloning() {
        let dataset = Dataset::running_example();
        let engine = IrEngine::builder()
            .dataset_ref(&dataset)
            .pool_capacity(8)
            .build()
            .unwrap();
        assert_eq!(engine.index().cardinality(), dataset.cardinality());
        let report = engine.query(&QueryVector::running_example()).unwrap();
        assert!(report.for_dim(DimId(0)).is_some());
    }

    #[test]
    fn builder_rejects_storage_knobs_on_prebuilt_index() {
        let dataset = Dataset::running_example();
        let index = ir_storage::TopKIndex::build_in_memory(&dataset).unwrap();
        let err = IrEngine::builder()
            .index(index)
            .pool_capacity(64)
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::Policy(_)), "{err}");
    }

    #[test]
    fn snapshot_roundtrip_through_the_facade() {
        use ir_storage::ColdStartSource;

        let built = engine();
        assert_eq!(built.cold_start_info().source, ColdStartSource::Built);
        assert_eq!(built.policy().cold_start.source, ColdStartSource::Built);

        let dir = tempfile::tempdir().unwrap();
        let summary = built.save_snapshot(dir.path()).unwrap();
        assert!(summary.total_pages > summary.data_pages);

        // Storage knobs compose with the snapshot source (unlike a
        // prebuilt index): pool capacity + backend are the serving stack.
        let reopened = IrEngine::builder()
            .open_snapshot(dir.path())
            .pool_capacity(8)
            .threads(2)
            .build()
            .unwrap();
        let info = reopened.cold_start_info();
        assert_eq!(info.source, ColdStartSource::Snapshot);
        assert!(
            info.bytes < built.cold_start_info().bytes,
            "snapshot open parses less than the build: {info:?}"
        );
        assert_eq!(reopened.policy().cold_start, info);

        // Served regions are identical to the built engine's (stats carry
        // timing/cache counters that legitimately differ, so compare the
        // region payload).
        let query = QueryVector::running_example();
        let expected = built.query(&query).unwrap();
        assert_eq!(reopened.query(&query).unwrap().dims, expected.dims);
    }

    #[test]
    fn opening_a_missing_snapshot_is_a_typed_error() {
        let dir = tempfile::tempdir().unwrap();
        let err = IrEngine::builder()
            .open_snapshot(dir.path().join("nope"))
            .build()
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, EngineError::SnapshotOpen { .. }), "{err}");
        assert!(err.to_string().contains("opening snapshot"), "{err}");
        assert!(
            std::error::Error::source(&err).is_some(),
            "the storage cause is chained"
        );
    }

    #[test]
    fn saving_over_an_unwritable_dir_is_a_typed_error() {
        // A *file* where the snapshot directory should be: create_dir_all
        // fails, and the failure names the directory.
        let dir = tempfile::tempdir().unwrap();
        let blocker = dir.path().join("blocked");
        std::fs::write(&blocker, b"not a directory").unwrap();
        let err = engine().save_snapshot(&blocker).map(|_| ()).unwrap_err();
        assert!(matches!(err, EngineError::SnapshotSave { .. }), "{err}");
        assert!(err.to_string().contains("saving snapshot"), "{err}");
    }

    #[test]
    fn mutations_flow_through_the_engine_and_count_in_health() {
        let engine = engine();
        let query = QueryVector::running_example();
        assert_eq!(
            engine.query(&query).unwrap().current_result(),
            [TupleId(1), TupleId(0)]
        );

        // Insert a dominating tuple; it enters the result at rank 1.
        let applied = engine
            .insert(SparseVector::from_pairs([(0, 0.99), (1, 0.99)]).unwrap())
            .unwrap();
        assert_eq!(applied.tuple, TupleId(4));
        assert_eq!(
            engine.query(&query).unwrap().current_result(),
            [TupleId(4), TupleId(1)]
        );

        // Nudge a coordinate, then delete the tuple: result restored.
        engine.update_score(TupleId(4), DimId(1), 0.5).unwrap();
        engine.delete(TupleId(4)).unwrap();
        assert_eq!(
            engine.query(&query).unwrap().current_result(),
            [TupleId(1), TupleId(0)]
        );

        let health = engine.health();
        assert_eq!(health.updates_applied, 3);
        assert!(engine.maintenance_stats().pages_written > 0);
        // A malformed update is a typed failure and applies nothing.
        assert!(engine.delete(TupleId(99)).is_err());
        assert_eq!(engine.health().updates_applied, 3);
    }

    #[test]
    fn subscription_absorbs_surviving_updates_without_recompute() {
        let engine = engine();
        let mut subscription = engine.subscribe(QueryVector::running_example()).unwrap();

        // A low-scoring insert cannot threaten the top-2: no recompute, and
        // the cached report must equal a recompute on the mutated data.
        let applied = engine
            .apply_updates(&[ir_types::TupleUpdate::Insert {
                vector: SparseVector::from_pairs([(0, 0.05), (1, 0.05)]).unwrap(),
            }])
            .unwrap();
        assert!(!subscription.absorb_updates(&applied).unwrap());
        assert_eq!(subscription.refreshes(), 0);
        let oracle = engine.query(&QueryVector::running_example()).unwrap();
        assert_eq!(subscription.report().dims, oracle.dims);

        // Deleting a result member must puncture and re-anchor.
        let applied = engine.apply_updates(&[ir_types::TupleUpdate::Delete { tuple: TupleId(1) }]);
        let applied = applied.unwrap();
        assert!(subscription.absorb_updates(&applied).unwrap());
        assert_eq!(subscription.refreshes(), 1);
        let oracle = engine.query(&QueryVector::running_example()).unwrap();
        assert_eq!(subscription.report().dims, oracle.dims);
        assert_eq!(subscription.result().ids(), oracle.current_result());

        let health = engine.health();
        assert_eq!(health.regions_survived, 1);
        assert_eq!(health.regions_punctured, 1);
        assert_eq!(health.updates_applied, 2);
    }

    #[test]
    fn snapshot_open_with_armed_faults_fails_typed_and_named() {
        let dir = tempfile::tempdir().unwrap();
        engine().save_snapshot(dir.path()).unwrap();
        let err = IrEngine::builder()
            .open_snapshot(dir.path())
            .fault_plan(FaultPlan::device_outage(0, None))
            .retry_policy(RetryPolicy::none())
            .build()
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, EngineError::SnapshotOpen { .. }), "{err}");
        assert!(err.to_string().contains("injected device failure"), "{err}");
    }
}
