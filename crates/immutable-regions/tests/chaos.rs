//! Chaos suite: the engine under an adversarial storage device.
//!
//! Every scenario runs the same deterministic workload (160 tuples × 5
//! dimensions, six queries, k = 4) against a fault-injecting page store and
//! checks the robustness contract end to end:
//!
//! * transient faults healed by the buffer pool's retry policy are
//!   **invisible** — reports byte-identical to a fault-free oracle run,
//! * permanent faults (device outage, corruption, exhausted retries,
//!   injected worker panics) surface as **typed errors**, never a panic of
//!   the calling thread and never a poisoned engine,
//! * after any failed query the engine answers the next one correctly.
//!
//! The matrix covers the mem and file backends (plus mmap with the `mmap`
//! feature) × 1/2/8 workers; a proptest sweep drives arbitrary fault plans
//! through the same invariants.

use immutable_regions::prelude::*;
use immutable_regions::storage::{CorruptionSpec, FaultPlan};
use ir_core::DimRegions;
use proptest::prelude::*;

/// Deterministic 160 × 5 dataset (same shape the parallel-driver tests
/// use): every value derived from the tuple and dimension index.
fn dataset() -> Dataset {
    let mut builder = DatasetBuilder::new(5);
    for i in 0..160u32 {
        let pairs: Vec<(u32, f64)> = (0..5u32)
            .map(|d| (d, (((i * 31 + d * 17) % 97) + 1) as f64 / 98.0))
            .collect();
        builder.push_pairs(pairs).unwrap();
    }
    builder.build()
}

/// Six deterministic 3-dimensional queries.
fn queries(k: usize) -> Vec<QueryVector> {
    (0..6u32)
        .map(|i| {
            QueryVector::new(
                [
                    (i % 5, 0.2 + 0.1 * (i % 4) as f64),
                    ((i + 1) % 5, 0.9 - 0.1 * (i % 3) as f64),
                    ((i + 2) % 5, 0.5),
                ],
                k,
            )
            .unwrap()
        })
        .collect()
}

/// The backend matrix: mem and file always, mmap when compiled in.
fn backend_names() -> Vec<&'static str> {
    let mut names = vec!["mem", "file"];
    if cfg!(feature = "mmap") {
        names.push("mmap");
    }
    names
}

/// Builds an engine over the chaos workload. The tempdir guard must stay
/// alive until the engine is built; afterwards the store holds its own
/// descriptor. A tiny pool (4 pages) forces real device traffic, and a
/// cold start clears whatever the build left cached so injected faults
/// actually strike the queries.
fn build_engine(
    backend: &str,
    threads: usize,
    plan: Option<FaultPlan>,
    retry: RetryPolicy,
) -> IrEngine {
    let dataset = dataset();
    let dir = tempfile::tempdir().unwrap();
    let storage = match backend {
        "mem" => StorageBackend::Memory,
        "file" => StorageBackend::Disk(dir.path().to_path_buf()),
        "mmap" => StorageBackend::Mmap(dir.path().to_path_buf()),
        other => panic!("unknown backend {other}"),
    };
    let mut builder = IrEngine::builder()
        .dataset_ref(&dataset)
        .backend(storage)
        .pool_capacity(4)
        .retry_policy(retry)
        .threads(threads);
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan);
    }
    let engine = builder.build().unwrap();
    engine.cold_start();
    engine
}

/// The fault-free reports every scenario compares against.
fn oracle_reports(k: usize) -> Vec<Vec<DimRegions>> {
    let engine = build_engine("mem", 1, None, RetryPolicy::default());
    engine
        .query_batch(&queries(k))
        .unwrap()
        .into_iter()
        .map(|report| report.dims)
        .collect()
}

/// Silences the default panic hook for deliberately injected panics
/// (worker threads print before containment catches them); everything else
/// still reaches the default hook.
fn quiet_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = immutable_regions::core::parallel::panic_message(info.payload());
            if !message.contains("injected fault") {
                default(info);
            }
        }));
    });
}

#[test]
fn transient_faults_heal_to_byte_identical_results() {
    let oracle = oracle_reports(4);
    // The device's op counter is shared across workers, so with several
    // threads the op index a retry attempt draws depends on scheduling: an
    // attempt can land on *any* not-yet-consumed faulted op, not just the
    // one after its last failure. Budgeting more attempts than the plan
    // has faults makes healing a pigeonhole guarantee — at most 10 of the
    // 12 attempts can be faulted — independent of interleaving.
    let retry = RetryPolicy {
        max_attempts: 12,
        ..RetryPolicy::default()
    };
    for backend in backend_names() {
        for threads in [1usize, 2, 8] {
            let plan = FaultPlan::transient_reads(7, 10, 400);
            let engine = build_engine(backend, threads, Some(plan), retry);
            let reports = engine
                .query_batch(&queries(4))
                .unwrap_or_else(|e| panic!("{backend}/{threads}: {e}"));
            for (i, report) in reports.iter().enumerate() {
                assert_eq!(
                    report.dims, oracle[i],
                    "{backend}/{threads} workers: query {i} diverged from the fault-free oracle"
                );
            }
            let health = engine.health();
            assert_eq!(health.queries_failed, 0, "{backend}/{threads}");
            assert!(
                health.read_retries > 0,
                "{backend}/{threads}: the plan must actually have fired \
                 (read_retries = 0 means the workload never hit a faulted op)"
            );
        }
    }
}

#[test]
fn device_outage_surfaces_typed_errors_then_heals() {
    let oracle = oracle_reports(4);
    for backend in backend_names() {
        // Read ops 0..3 fail permanently; no retries, so each failed query
        // burns exactly one op.
        let plan = FaultPlan::device_outage(0, Some(3));
        let engine = build_engine(backend, 1, Some(plan), RetryPolicy::none());
        let query = &queries(4)[0];
        for attempt in 0..3 {
            let err = engine.query(query).map(|_| ()).unwrap_err();
            assert!(
                matches!(&err, EngineError::Core(IrError::Storage(_))),
                "{backend} attempt {attempt}: {err:?}"
            );
            assert!(
                err.to_string().contains("injected device failure"),
                "{backend}: {err}"
            );
        }
        // The outage window is exhausted: the engine heals in place.
        let report = engine.query(query).unwrap();
        assert_eq!(report.dims, oracle[0], "{backend}: post-outage divergence");
        let health = engine.health();
        assert_eq!(health.queries_failed, 3, "{backend}");
        assert_eq!(health.queries_ok, 1, "{backend}");
        assert_eq!(health.worker_panics, 0, "{backend}");
    }
}

#[test]
fn worker_panics_are_contained_on_every_thread_count() {
    quiet_panics();
    let oracle = oracle_reports(4);
    for backend in backend_names() {
        for threads in [1usize, 2, 8] {
            let plan = FaultPlan {
                panic_read_ops: vec![2],
                ..FaultPlan::default()
            };
            let engine = build_engine(backend, threads, Some(plan), RetryPolicy::none());
            let err = engine.query_batch(&queries(4)).map(|_| ()).unwrap_err();
            assert!(
                matches!(&err, EngineError::Core(IrError::WorkerPanicked { .. })),
                "{backend}/{threads}: {err:?}"
            );
            // The panic fired exactly once; the engine serves the full
            // batch correctly on the very next call.
            let reports = engine
                .query_batch(&queries(4))
                .unwrap_or_else(|e| panic!("{backend}/{threads} post-panic: {e}"));
            for (i, report) in reports.iter().enumerate() {
                assert_eq!(report.dims, oracle[i], "{backend}/{threads}: query {i}");
            }
            let health = engine.health();
            assert_eq!(health.worker_panics, 1, "{backend}/{threads}");
            assert_eq!(health.queries_failed, 1, "{backend}/{threads}");
            assert_eq!(health.queries_ok, 1, "{backend}/{threads}");
        }
    }
}

#[test]
fn corruption_is_typed_and_one_shot() {
    let oracle = oracle_reports(4);
    for backend in backend_names() {
        let plan = FaultPlan {
            corruptions: vec![CorruptionSpec {
                op: 1,
                byte_offset: 33,
                xor_mask: 0x40,
            }],
            ..FaultPlan::default()
        };
        let engine = build_engine(backend, 1, Some(plan), RetryPolicy::default());
        let query = &queries(4)[0];
        let err = engine.query(query).map(|_| ()).unwrap_err();
        assert!(
            matches!(
                &err,
                EngineError::Core(IrError::Corruption { page: Some(_), .. })
            ),
            "{backend}: {err:?}"
        );
        assert!(
            err.to_string().contains("checksum mismatch"),
            "{backend}: {err}"
        );
        // The injector restores the byte after the read (one-shot), so the
        // device is clean again and the engine answers correctly.
        let report = engine.query(query).unwrap();
        assert_eq!(
            report.dims, oracle[0],
            "{backend}: post-corruption divergence"
        );
        let health = engine.health();
        assert_eq!(health.corruption_errors, 1, "{backend}");
        assert_eq!(health.queries_ok, 1, "{backend}");
    }
}

#[test]
fn consecutive_transients_exhaust_retries_with_a_typed_error() {
    let oracle = oracle_reports(4);
    for backend in backend_names() {
        // Ops 0, 1 and 2 all fail transiently: a 3-attempt policy burns
        // attempt 1 on op 0, retries into ops 1 and 2, and gives up typed.
        let plan = FaultPlan {
            transient_read_ops: vec![0, 1, 2],
            ..FaultPlan::default()
        };
        let engine = build_engine(backend, 1, Some(plan), RetryPolicy::default());
        let query = &queries(4)[0];
        let err = engine.query(query).map(|_| ()).unwrap_err();
        assert!(
            matches!(
                &err,
                EngineError::Core(IrError::RetryExhausted { attempts: 3, .. })
            ),
            "{backend}: {err:?}"
        );
        let report = engine.query(query).unwrap();
        assert_eq!(
            report.dims, oracle[0],
            "{backend}: post-exhaustion divergence"
        );
        let health = engine.health();
        assert_eq!(health.retries_exhausted, 1, "{backend}");
        assert_eq!(health.read_retries, 2, "{backend}: two retries were burned");
        assert_eq!(health.queries_ok, 1, "{backend}");
    }
}

/// Strategy for arbitrary (panic-free) fault plans: scattered transient
/// ops, an optional outage window (length 0 = none) and an optional
/// one-shot corruption (mask 0 = none — a zero XOR would be invisible
/// anyway).
fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        proptest::collection::vec(0u64..300, 0..12),
        (0u64..50, 0u64..40),
        (0u64..100, 0usize..4096, 0u8..=255),
    )
        .prop_map(
            |(mut transient_read_ops, (from, outage_len), (op, byte_offset, xor_mask))| {
                transient_read_ops.sort_unstable();
                transient_read_ops.dedup();
                let (fail_reads_from_op, fail_reads_until_op) = if outage_len > 0 {
                    (Some(from), Some(from + outage_len))
                } else {
                    (None, None)
                };
                FaultPlan {
                    transient_read_ops,
                    fail_reads_from_op,
                    fail_reads_until_op,
                    corruptions: if xor_mask != 0 {
                        vec![CorruptionSpec {
                            op,
                            byte_offset: byte_offset as u32,
                            xor_mask,
                        }]
                    } else {
                        Vec::new()
                    },
                    ..FaultPlan::default()
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8).with_seed(0xC4A0_0001))]

    /// Under an arbitrary fault plan the engine never panics the caller:
    /// every query either matches the fault-free oracle byte for byte or
    /// fails with a typed error — and once the device is disarmed, the
    /// engine serves the whole workload correctly again.
    #[test]
    fn arbitrary_fault_plans_never_poison_the_engine(plan in arb_fault_plan()) {
        let oracle = oracle_reports(4);
        let engine = build_engine("mem", 2, Some(plan), RetryPolicy::default());
        for (i, query) in queries(4).iter().enumerate() {
            match engine.query(query) {
                Ok(report) => prop_assert_eq!(
                    &report.dims, &oracle[i],
                    "query {} diverged under faults", i
                ),
                Err(EngineError::Core(_)) => {} // typed failure: acceptable
                Err(other) => prop_assert!(false, "untyped failure: {:?}", other),
            }
        }
        // Disarm the device: the engine must be fully serviceable.
        engine.index().fault_injector().unwrap().disarm();
        let reports = engine.query_batch(&queries(4)).unwrap();
        for (i, report) in reports.iter().enumerate() {
            prop_assert_eq!(&report.dims, &oracle[i], "post-disarm query {}", i);
        }
        let health = engine.health();
        prop_assert_eq!(health.queries_ok + health.queries_failed, 7);
    }
}
