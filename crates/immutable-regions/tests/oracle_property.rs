//! Property-based tests: on arbitrary datasets and queries, the computed
//! immutable regions must actually be immutable (the result is unchanged at
//! sampled deviations inside the region) and maximal (the result changes
//! just outside a non-degenerate boundary).

use immutable_regions::prelude::*;
use proptest::prelude::*;

/// Strategy for a small dataset: a list of sparse tuples over `dims`
/// dimensions, each with at least one non-zero coordinate.
fn dataset_strategy(dims: u32, max_tuples: usize) -> impl Strategy<Value = Dataset> {
    let tuple = proptest::collection::btree_map(0..dims, 0.01f64..1.0, 1..=dims as usize);
    proptest::collection::vec(tuple, 5..max_tuples).prop_map(move |tuples| {
        let mut builder = DatasetBuilder::new(dims);
        for t in tuples {
            builder.push_pairs(t).unwrap();
        }
        builder.build()
    })
}

fn query_strategy(dims: u32) -> impl Strategy<Value = QueryVector> {
    (
        proptest::collection::btree_map(0..dims, 0.2f64..=1.0, 2..=3),
        1usize..4,
    )
        .prop_map(|(weights, k)| QueryVector::new(weights, k).unwrap())
}

fn topk_by_scan(dataset: &Dataset, query: &QueryVector, dim: DimId, delta: f64) -> Vec<TupleId> {
    use ir_types::{score_cmp, RankedTuple};
    let mut ranked: Vec<RankedTuple> = dataset
        .iter()
        .map(|(id, t)| RankedTuple::new(id, query.score(t) + delta * t.get(dim)))
        .collect();
    ranked.sort_by(score_cmp);
    ranked.into_iter().take(query.k()).map(|r| r.id).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24).with_seed(0xB00C_0002))]

    /// Inside the reported immutable region the ordered top-k never changes.
    #[test]
    fn regions_are_immutable_inside(
        dataset in dataset_strategy(5, 40),
        query in query_strategy(5),
    ) {
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        let mut computation =
            RegionComputation::new(&index, &query, RegionConfig::flat(Algorithm::Cpt)).unwrap();
        let report = computation.compute().unwrap();
        let baseline = computation.result().ids();

        for dim_regions in &report.dims {
            let dim = dim_regions.dim;
            let (lo, hi) = (dim_regions.immutable.lo, dim_regions.immutable.hi);
            // Sample a few interior points (strictly inside to avoid the
            // boundary itself, where the perturbation happens).
            for frac in [0.05, 0.35, 0.65, 0.95] {
                let delta = lo + (hi - lo) * frac;
                if delta <= lo + 1e-12 || delta >= hi - 1e-12 {
                    continue;
                }
                let result = topk_by_scan(&dataset, &query, dim, delta);
                prop_assert_eq!(
                    &result, &baseline,
                    "result changed inside IR of {:?} at delta {}", dim, delta
                );
            }
        }
    }

    /// Just outside a boundary that is not the domain edge the result does
    /// change (maximality of the region).
    #[test]
    fn regions_are_maximal_outside(
        dataset in dataset_strategy(4, 30),
        query in query_strategy(4),
    ) {
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        let mut computation =
            RegionComputation::new(&index, &query, RegionConfig::flat(Algorithm::Scan)).unwrap();
        let report = computation.compute().unwrap();
        let baseline = computation.result().ids();

        for dim_regions in &report.dims {
            let dim = dim_regions.dim;
            let weight = dim_regions.weight;
            let eps = 1e-7;
            if dim_regions.upper_boundary.is_some()
                && dim_regions.immutable.hi + eps < 1.0 - weight
            {
                let outside = topk_by_scan(&dataset, &query, dim, dim_regions.immutable.hi + eps);
                prop_assert_ne!(
                    &outside, &baseline,
                    "no perturbation just past the upper bound of {:?}", dim
                );
            }
            if dim_regions.lower_boundary.is_some() && dim_regions.immutable.lo - eps > -weight {
                let outside = topk_by_scan(&dataset, &query, dim, dim_regions.immutable.lo - eps);
                prop_assert_ne!(
                    &outside, &baseline,
                    "no perturbation just below the lower bound of {:?}", dim
                );
            }
        }
    }

    /// All four algorithms report identical regions on arbitrary inputs.
    #[test]
    fn algorithms_agree_on_arbitrary_inputs(
        dataset in dataset_strategy(4, 30),
        query in query_strategy(4),
    ) {
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        let mut reports = Vec::new();
        for algorithm in Algorithm::ALL {
            let mut computation =
                RegionComputation::new(&index, &query, RegionConfig::flat(algorithm)).unwrap();
            reports.push(computation.compute().unwrap());
        }
        for report in &reports[1..] {
            for (a, b) in reports[0].dims.iter().zip(&report.dims) {
                prop_assert!(a.immutable.approx_eq(&b.immutable, 1e-9));
            }
        }
    }
}
