//! Backend-agreement suite: the storage backend must never leak into query
//! output.
//!
//! For every algorithm, φ level and worker count, an engine built over the
//! file backend — and, with the `mmap` feature, the mmap backend — must
//! produce *byte-identical* region reports and deterministic counters to
//! the default [`MemPageStore`](ir_storage::MemPageStore) engine: same
//! intervals (bitwise), same boundaries, same evaluated-candidate counts,
//! same logical reads. The backends store the same pages in the same layout
//! behind the same buffer pool, so any divergence is a correctness bug in
//! the access path, not a legitimate backend difference.
//!
//! Seeded like the other property suites so failures reproduce exactly.

use immutable_regions::engine::IrEngine;
use immutable_regions::prelude::*;
use ir_storage::BackendKind;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A small random dataset with mixed sparsity, same idiom as
/// `parallel_agreement`.
fn random_dataset(rng: &mut ChaCha8Rng, n: usize, dims: u32) -> Dataset {
    let mut builder = DatasetBuilder::new(dims);
    for _ in 0..n {
        let style: f64 = rng.gen();
        let pairs: Vec<(u32, f64)> = if style < 0.4 {
            vec![(rng.gen_range(0..dims), rng.gen_range(0.05..1.0))]
        } else if style < 0.7 {
            let a = rng.gen_range(0..dims);
            let mut b = rng.gen_range(0..dims);
            while b == a {
                b = rng.gen_range(0..dims);
            }
            vec![(a, rng.gen_range(0.05..1.0)), (b, rng.gen_range(0.05..1.0))]
        } else {
            (0..dims).map(|d| (d, rng.gen_range(0.01..1.0))).collect()
        };
        builder.push_pairs(pairs).unwrap();
    }
    builder.build()
}

fn random_batch(rng: &mut ChaCha8Rng, dims: u32, queries: usize) -> Vec<QueryVector> {
    (0..queries)
        .map(|_| {
            let qlen = rng.gen_range(2..=dims.min(4)) as usize;
            let k = rng.gen_range(1..6);
            let mut chosen = Vec::new();
            while chosen.len() < qlen {
                let d = rng.gen_range(0..dims);
                if !chosen.contains(&d) {
                    chosen.push(d);
                }
            }
            QueryVector::new(chosen.into_iter().map(|d| (d, rng.gen_range(0.2..=1.0))), k).unwrap()
        })
        .collect()
}

/// Builds an engine over `dataset` on the requested backend, with a scratch
/// page directory where one is needed.
fn engine_on(
    dataset: &Dataset,
    backend: BackendKind,
    config: RegionConfig,
    threads: usize,
) -> IrEngine {
    let builder = IrEngine::builder()
        .dataset_ref(dataset)
        .config(config)
        .threads(threads);
    let engine = match backend {
        BackendKind::Mem => builder.build(),
        BackendKind::File => {
            let dir = tempfile::tempdir().unwrap();
            builder.on_disk(dir.path()).build()
        }
        BackendKind::Mmap => {
            let dir = tempfile::tempdir().unwrap();
            builder.on_mmap(dir.path()).build()
        }
    };
    engine.unwrap_or_else(|e| panic!("building {backend} engine: {e}"))
}

/// The backends exercised by this build: the mmap backend joins the matrix
/// whenever the feature is compiled in.
fn alternative_backends() -> Vec<BackendKind> {
    let mut backends = vec![BackendKind::File];
    if cfg!(feature = "mmap") {
        backends.push(BackendKind::Mmap);
    }
    backends
}

/// Core requirement: batch output over the file/mmap backends is identical
/// to the mem-backend oracle for every algorithm × φ × worker count —
/// regions, boundary perturbations, evaluated candidates and logical reads
/// alike.
#[test]
fn backends_agree_for_all_algorithms_phi_and_worker_counts() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xBA_CE2D);
    for phi in [0usize, 1, 3] {
        for algorithm in Algorithm::ALL {
            let dims = rng.gen_range(3..7);
            let n = rng.gen_range(40..120);
            let dataset = random_dataset(&mut rng, n, dims);
            let queries = random_batch(&mut rng, dims, 4);
            let config = RegionConfig::with_phi(algorithm, phi);

            let oracle_engine = engine_on(&dataset, BackendKind::Mem, config, 1);
            let oracle: Vec<RegionReport> = queries
                .iter()
                .map(|q| {
                    oracle_engine.cold_start();
                    oracle_engine.query(q).unwrap()
                })
                .collect();

            for backend in alternative_backends() {
                for threads in [1usize, 2, 8] {
                    let engine = engine_on(&dataset, backend, config, threads);
                    let reports = engine.query_batch(&queries).unwrap();
                    assert_eq!(reports.len(), oracle.len());
                    for (qi, (expected, actual)) in oracle.iter().zip(&reports).enumerate() {
                        let context = format!(
                            "{algorithm} phi={phi} backend={backend} threads={threads} query={qi}"
                        );
                        assert_eq!(
                            expected.dims, actual.dims,
                            "{context}: regions must be byte-identical across backends"
                        );
                        assert_eq!(
                            expected.stats.evaluated_per_dim, actual.stats.evaluated_per_dim,
                            "{context}: evaluated candidates differ"
                        );
                        assert_eq!(
                            expected.stats.io.logical_reads, actual.stats.io.logical_reads,
                            "{context}: logical reads differ"
                        );
                    }
                }
            }
        }
    }
}

/// Composition-only mode (Figure 16's envelope solver) must agree across
/// backends too.
#[test]
fn backends_agree_in_composition_only_mode() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x00C0_BACE);
    for algorithm in [Algorithm::Scan, Algorithm::Cpt] {
        let dims = rng.gen_range(3..6);
        let dataset = random_dataset(&mut rng, 80, dims);
        let queries = random_batch(&mut rng, dims, 3);
        let config = RegionConfig::flat(algorithm).composition_only();
        let oracle_engine = engine_on(&dataset, BackendKind::Mem, config, 1);
        let oracle: Vec<RegionReport> = queries
            .iter()
            .map(|q| oracle_engine.query(q).unwrap())
            .collect();
        for backend in alternative_backends() {
            let engine = engine_on(&dataset, backend, config, 2);
            let reports = engine.query_batch(&queries).unwrap();
            for (expected, actual) in oracle.iter().zip(&reports) {
                assert_eq!(
                    expected.dims, actual.dims,
                    "{algorithm} composition-only backend={backend}"
                );
            }
        }
    }
}

/// The device-level story differs per backend even though the output never
/// does: the mem store issues no syscalls, the file store pays one per pool
/// miss, the mmap store pays page-fault-equivalent copies plus a handful of
/// `mmap(2)` calls. This is exactly the "shape-only for io counters that
/// legitimately differ" split the CI diff relies on.
#[test]
fn device_level_counters_tell_the_backend_story() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x10_57A7);
    let dataset = random_dataset(&mut rng, 100, 4);
    let queries = random_batch(&mut rng, 4, 4);

    let mut pool_snapshots = Vec::new();
    for backend in std::iter::once(BackendKind::Mem).chain(alternative_backends()) {
        let engine = engine_on(&dataset, backend, RegionConfig::default(), 1);
        engine.cold_start();
        for q in &queries {
            let _ = engine.query(q).unwrap();
        }
        let pool = engine.index().io_snapshot();
        let store = engine.index().store_io_snapshot();
        assert_eq!(
            store.logical_reads, pool.physical_reads,
            "{backend}: the store must see exactly the pool's misses"
        );
        match backend {
            BackendKind::Mem => assert_eq!(store.read_syscalls, 0),
            BackendKind::File => assert_eq!(
                store.read_syscalls, store.logical_reads,
                "positioned reads: one syscall per miss"
            ),
            BackendKind::Mmap => assert!(
                store.read_syscalls < store.logical_reads / 2,
                "mmap must amortize syscalls across reads: {} syscalls for {} reads",
                store.read_syscalls,
                store.logical_reads
            ),
        }
        pool_snapshots.push((backend, pool));
    }
    // The pool-level counters — what the experiment harness reports — are
    // identical on every backend.
    let (_, first) = pool_snapshots[0];
    for (backend, snap) in &pool_snapshots[1..] {
        assert_eq!(*snap, first, "pool counters diverged on {backend}");
    }
}
