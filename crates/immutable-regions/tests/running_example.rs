//! End-to-end checks against every number the paper reports for its running
//! example (Figures 1, 2 and 5 and the Section 1 walk-through).

use immutable_regions::prelude::*;

fn setup() -> (TopKIndex, QueryVector) {
    let dataset = Dataset::running_example();
    let index = TopKIndex::build_in_memory(&dataset).unwrap();
    (index, QueryVector::running_example())
}

#[test]
fn figure_2_round_robin_ta_trace() {
    let (index, query) = setup();
    let config = TaConfig {
        probe_strategy: ProbeStrategy::RoundRobin,
    };
    let run = TaRun::execute(&index, &query, &config).unwrap();
    // R(q) = [d2, d1] with scores 0.81 and 0.80, C(q) = [d3] with score 0.48.
    assert_eq!(run.result().ids(), vec![TupleId(1), TupleId(0)]);
    assert!((run.result().at(0).unwrap().score - 0.81).abs() < 1e-12);
    assert!((run.result().at(1).unwrap().score - 0.80).abs() < 1e-12);
    assert_eq!(run.candidates().len(), 1);
    let d3 = run.candidates().top().unwrap();
    assert_eq!(d3.id, TupleId(2));
    assert!((d3.score - 0.48).abs() < 1e-12);
    // Figure 2 terminates after processing d1, d3 and d2 (3 sorted accesses);
    // the final threshold is 0.38 <= S(d1, q) = 0.80.
    assert_eq!(run.stats().sorted_accesses, 3);
    assert!((run.threshold() - 0.38).abs() < 1e-12);
}

#[test]
fn figure_1_immutable_regions_for_every_algorithm_and_mode() {
    let (index, query) = setup();
    for algorithm in Algorithm::ALL {
        let mut computation =
            RegionComputation::new(&index, &query, RegionConfig::flat(algorithm)).unwrap();
        let report = computation.compute().unwrap();
        // IR_1 = (q1 - 16/35, q1 + 0.1), IR_2 = (q2 - 1/18, q2 + 0.5).
        let d0 = report.for_dim(DimId(0)).unwrap();
        assert!(
            (d0.immutable.lo + 16.0 / 35.0).abs() < 1e-9,
            "{}",
            algorithm.name()
        );
        assert!((d0.immutable.hi - 0.1).abs() < 1e-9, "{}", algorithm.name());
        let abs = d0.absolute_immutable();
        assert!((abs.lo - (0.8 - 16.0 / 35.0)).abs() < 1e-9);
        assert!((abs.hi - 0.9).abs() < 1e-9);
        let d1 = report.for_dim(DimId(1)).unwrap();
        assert!(
            (d1.immutable.lo + 1.0 / 18.0).abs() < 1e-9,
            "{}",
            algorithm.name()
        );
        assert!((d1.immutable.hi - 0.5).abs() < 1e-9, "{}", algorithm.name());
    }
}

#[test]
fn figure_5_phase_roles() {
    // Figure 5 shows that Phase 1 (result reorderings) bounds IR_1's upper
    // end at +0.1 and IR_2's lower end at -1/18, while Phase 2 (the
    // candidate d3) bounds IR_1's lower end at -16/35, and Phase 3 finds no
    // further tuple. The boundary provenance exposes exactly this.
    let (index, query) = setup();
    let mut computation =
        RegionComputation::new(&index, &query, RegionConfig::flat(Algorithm::Scan)).unwrap();
    let report = computation.compute().unwrap();

    let d0 = report.for_dim(DimId(0)).unwrap();
    assert_eq!(
        d0.upper_boundary.unwrap().perturbation,
        Perturbation::Reorder {
            moved_up: TupleId(0),
            moved_down: TupleId(1)
        }
    );
    assert_eq!(
        d0.lower_boundary.unwrap().perturbation,
        Perturbation::Replace {
            entering: TupleId(2),
            leaving: TupleId(0)
        }
    );

    let d1 = report.for_dim(DimId(1)).unwrap();
    assert_eq!(
        d1.lower_boundary.unwrap().perturbation,
        Perturbation::Reorder {
            moved_up: TupleId(0),
            moved_down: TupleId(1)
        }
    );
    // IR_2's upper end is +0.5 = 1 - q_2: the domain edge, not a
    // perturbation (Figure 5's Phase-2 constraint of 2/3 lies beyond it).
    assert!((d1.immutable.hi - 0.5).abs() < 1e-9);
    assert!(d1.upper_boundary.is_none());
}

#[test]
fn section_1_phi_1_regions() {
    // Section 1: with φ = 1, keeping q1 within
    // (q1 - 0.55, q1 - 16/35) ∪ [q1 - 16/35, q1 + 0.1] ∪ (q1 + 0.1, q1 + 0.2)
    // ensures at most one perturbation; the respective results are
    // [d2, d3], [d2, d1], [d1, d2].
    let (index, query) = setup();
    let mut computation =
        RegionComputation::new(&index, &query, RegionConfig::with_phi(Algorithm::Cpt, 1)).unwrap();
    let report = computation.compute().unwrap();
    let d0 = report.for_dim(DimId(0)).unwrap();
    assert_eq!(d0.regions.len(), 3);

    let left = &d0.regions[0];
    assert!((left.delta_lo + 0.55).abs() < 1e-9);
    assert!((left.delta_hi + 16.0 / 35.0).abs() < 1e-9);
    assert_eq!(left.result, vec![TupleId(1), TupleId(2)]);

    let center = &d0.regions[1];
    assert_eq!(center.result, vec![TupleId(1), TupleId(0)]);
    assert_eq!(d0.current_region, 1);

    let right = &d0.regions[2];
    assert!((right.delta_lo - 0.1).abs() < 1e-9);
    assert!((right.delta_hi - 0.2).abs() < 1e-9);
    assert_eq!(right.result, vec![TupleId(0), TupleId(1)]);
}

#[test]
fn weight_shifts_confirm_the_reported_regions() {
    // Actually re-run the query with shifted weights and confirm the result
    // changes exactly where the regions say it does.
    let (index, query) = setup();
    let mut computation =
        RegionComputation::new(&index, &query, RegionConfig::flat(Algorithm::Cpt)).unwrap();
    let report = computation.compute().unwrap();
    let d0 = report.for_dim(DimId(0)).unwrap();

    let result_at = |delta: f64| {
        let shifted = query.with_weight_shift(DimId(0), delta).unwrap();
        TaRun::execute_default(&index, &shifted)
            .unwrap()
            .result()
            .ids()
    };
    let inside_hi = d0.immutable.hi - 1e-6;
    let outside_hi = d0.immutable.hi + 1e-6;
    let inside_lo = d0.immutable.lo + 1e-6;
    let outside_lo = d0.immutable.lo - 1e-6;
    let current = computation.result().ids();
    assert_eq!(result_at(inside_hi), current);
    assert_eq!(result_at(inside_lo), current);
    assert_ne!(result_at(outside_hi), current);
    assert_ne!(result_at(outside_lo), current);
}
