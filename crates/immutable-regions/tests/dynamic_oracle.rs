//! Dynamic-data oracle suite: incremental maintenance must be invisible.
//!
//! The update model's contract (the "oracle law"): after ANY update
//! sequence, every incremental result and region report is byte-identical
//! to a full recompute on the mutated dataset. Three layers enforce it:
//!
//! * **matrix** — a deterministic [`ir_datagen::UpdateStream`] applied in
//!   batches through [`IrEngine::apply_updates`], checked against a
//!   freshly built engine on the mutated dataset for every algorithm ×
//!   {mem, file, mmap} × 1/2/8 workers,
//! * **mid-stream** — the law holds after *every* batch, not only at the
//!   end (an incrementally maintained index never serves a stale page),
//! * **interleaving (proptest)** — random `DriftEvent`s and update
//!   batches woven through one [`SubscriptionManager`]: answer/report
//!   agreement with a fresh engine at every step, plus counter
//!   conservation across both kinds of traffic.

use immutable_regions::engine::IrEngine;
use immutable_regions::prelude::*;
use ir_datagen::{UpdateConfig, UpdateStream};
use ir_storage::BackendKind;
use ir_types::TupleUpdate;
use proptest::prelude::*;

/// Deterministic 160 × 5 dataset (the chaos-suite workload).
fn dataset() -> Dataset {
    let mut builder = DatasetBuilder::new(5);
    for i in 0..160u32 {
        let pairs: Vec<(u32, f64)> = (0..5u32)
            .map(|d| (d, (((i * 31 + d * 17) % 97) + 1) as f64 / 98.0))
            .collect();
        builder.push_pairs(pairs).unwrap();
    }
    builder.build()
}

/// A fixed five-query workload over the 160 × 5 dataset, spanning 2–3
/// dims and mixed k.
fn queries() -> Vec<QueryVector> {
    (0..5u64)
        .map(|i| {
            let dims = [
                (((i) % 5) as u32, 0.2 + 0.1 * ((i % 4) as f64)),
                (((i + 1) % 5) as u32, 0.9 - 0.1 * ((i % 3) as f64)),
                (((i + 2) % 5) as u32, 0.5),
            ];
            QueryVector::new(dims, 3 + (i as usize % 4)).unwrap()
        })
        .collect()
}

/// Builds an engine over `dataset` on the requested backend.
fn engine_on(
    dataset: &Dataset,
    backend: BackendKind,
    config: RegionConfig,
    threads: usize,
) -> IrEngine {
    let builder = IrEngine::builder()
        .dataset_ref(dataset)
        .config(config)
        .threads(threads);
    let engine = match backend {
        BackendKind::Mem => builder.build(),
        BackendKind::File => {
            let dir = tempfile::tempdir().unwrap();
            builder.on_disk(dir.path()).build()
        }
        BackendKind::Mmap => {
            let dir = tempfile::tempdir().unwrap();
            builder.on_mmap(dir.path()).build()
        }
    };
    engine.unwrap_or_else(|e| panic!("building {backend} engine: {e}"))
}

fn backends() -> Vec<BackendKind> {
    let mut backends = vec![BackendKind::Mem, BackendKind::File];
    if cfg!(feature = "mmap") {
        backends.push(BackendKind::Mmap);
    }
    backends
}

/// The oracle law across the full serving matrix: every algorithm ×
/// backend × worker count serves byte-identical reports after the same
/// update stream as a fresh engine built on the mutated dataset.
#[test]
fn incremental_equals_recompute_across_algorithms_backends_and_workers() {
    let base = dataset();
    let stream = UpdateStream::generate(
        &base,
        &UpdateConfig {
            num_updates: 60,
            churn: 0.5,
            zipf_exponent: 1.0,
            remove_fraction: 0.2,
        },
        0xD1A0,
    )
    .unwrap();
    let mutated = base.with_updates(stream.updates()).unwrap();
    let queries = queries();

    for algorithm in Algorithm::ALL {
        let config = RegionConfig::with_phi(algorithm, 1);
        let oracle_engine = engine_on(&mutated, BackendKind::Mem, config, 1);
        let oracle: Vec<RegionReport> = queries
            .iter()
            .map(|q| oracle_engine.query(q).unwrap())
            .collect();

        for backend in backends() {
            for threads in [1usize, 2, 8] {
                let engine = engine_on(&base, backend, config, threads);
                for batch in stream.batches(16) {
                    engine.apply_updates(batch).unwrap();
                }
                let reports = engine.query_batch(&queries).unwrap();
                for (qi, (expected, actual)) in oracle.iter().zip(&reports).enumerate() {
                    assert_eq!(
                        expected.dims, actual.dims,
                        "{algorithm} backend={backend} threads={threads} query={qi}: \
                         incremental report must be byte-identical to the full recompute"
                    );
                }
                assert_eq!(engine.health().updates_applied, stream.len() as u64);
            }
        }
    }
}

/// The law holds after every batch, not only at the end of the stream.
#[test]
fn every_intermediate_batch_state_matches_a_fresh_rebuild() {
    let base = dataset();
    let stream = UpdateStream::generate(
        &base,
        &UpdateConfig {
            num_updates: 40,
            churn: 0.6,
            zipf_exponent: 0.8,
            remove_fraction: 0.15,
        },
        7,
    )
    .unwrap();
    let queries = queries();
    let engine = engine_on(&base, BackendKind::File, RegionConfig::default(), 2);

    let mut applied: Vec<TupleUpdate> = Vec::new();
    for batch in stream.batches(10) {
        engine.apply_updates(batch).unwrap();
        applied.extend(batch.iter().cloned());
        let mutated = base.with_updates(&applied).unwrap();
        let oracle = engine_on(&mutated, BackendKind::Mem, RegionConfig::default(), 1);
        for (qi, q) in queries.iter().enumerate() {
            assert_eq!(
                engine.query(q).unwrap().dims,
                oracle.query(q).unwrap().dims,
                "after {} updates, query {qi} diverged from the rebuilt oracle",
                applied.len()
            );
        }
    }
}

/// Convenience single-update entry points are the same maintenance path.
#[test]
fn single_update_conveniences_match_the_batch_path() {
    let base = dataset();
    let a = engine_on(&base, BackendKind::Mem, RegionConfig::default(), 1);
    let b = engine_on(&base, BackendKind::Mem, RegionConfig::default(), 1);

    let vector = SparseVector::from_pairs([(0u32, 0.9), (3u32, 0.4)]).unwrap();
    let ins_a = a.insert(vector.clone()).unwrap();
    let ins_b = b
        .apply_updates(&[TupleUpdate::Insert { vector }])
        .unwrap()
        .remove(0);
    assert_eq!(ins_a, ins_b);
    assert_eq!(
        a.update_score(TupleId(5), DimId(2), 0.75).unwrap(),
        b.apply_updates(&[TupleUpdate::UpdateScore {
            tuple: TupleId(5),
            dim: DimId(2),
            value: 0.75,
        }])
        .unwrap()
        .remove(0)
    );
    assert_eq!(
        a.delete(TupleId(9)).unwrap(),
        b.apply_updates(&[TupleUpdate::Delete { tuple: TupleId(9) }])
            .unwrap()
            .remove(0)
    );
    for q in queries() {
        assert_eq!(a.query(&q).unwrap().dims, b.query(&q).unwrap().dims);
    }
}

/// A random fleet: 2–5 subscriptions, each over 2–3 distinct dimensions
/// of the 5 with weights in `[0.2, 1.0]` and its own `k`.
fn arb_fleet() -> impl Strategy<Value = Vec<(u64, QueryVector)>> {
    proptest::collection::vec(
        (
            proptest::collection::btree_map(0u32..5, 0.2f64..=1.0, 2..=3),
            3usize..=6,
        ),
        2..=5,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (weights, k))| (i as u64, QueryVector::new(weights, k).unwrap()))
            .collect()
    })
}

/// A random (valid) update-stream configuration.
fn arb_updates() -> impl Strategy<Value = UpdateConfig> {
    (12usize..=36, 0.0f64..=1.0, 0.0f64..=1.5, 0.0f64..=0.4).prop_map(
        |(num_updates, churn, zipf_exponent, remove_fraction)| UpdateConfig {
            num_updates,
            churn,
            zipf_exponent,
            remove_fraction,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10).with_seed(219840087))]

    /// Satellite: `DriftEvent`s and `UpdateStream` batches interleaved
    /// through ONE manager. Every drift answer agrees with a fresh
    /// recompute on the dataset state current at that moment, every
    /// member report stays oracle-identical after the final flush, and
    /// the counters conserve across both kinds of traffic.
    #[test]
    fn interleaved_drift_and_updates_conserve_and_agree(
        fleet in arb_fleet(),
        drift in (20usize..=40, 0.0f64..=1.5).prop_map(|(num_events, zipf_exponent)| DriftConfig {
            num_events,
            zipf_exponent,
            small_delta: 0.01,
            large_delta: 0.3,
            large_every: 5,
        }),
        updates in arb_updates(),
        seed in 0u64..=u64::MAX,
        threads in 1usize..=2,
    ) {
        let base = dataset();
        let drift_stream = DriftStream::generate(&fleet, &drift, seed).unwrap();
        let update_stream = UpdateStream::generate(&base, &updates, seed ^ 0xA11).unwrap();

        let engine = engine_on(&base, BackendKind::Mem, RegionConfig::default(), threads);
        let mut manager = SubscriptionManager::new(
            &engine,
            FleetConfig { max_batch: 4, ..FleetConfig::default() },
        ).unwrap();
        manager.admit_all(fleet.clone()).unwrap();

        // Interleave: 3 rounds of (update batch, drift chunk).
        let rounds = 3usize;
        let update_chunk = update_stream.len().div_ceil(rounds);
        let drift_chunk = drift_stream.len().div_ceil(rounds);
        let mut applied: Vec<TupleUpdate> = Vec::new();
        let mut current: Vec<QueryVector> = fleet.iter().map(|(_, q)| q.clone()).collect();
        let mut update_batches = 0u64;
        let mut events_seen = 0u64;

        for round in 0..rounds {
            let updates_now = update_stream.updates()
                .chunks(update_chunk.max(1))
                .nth(round)
                .unwrap_or(&[]);
            if !updates_now.is_empty() {
                manager.apply_updates(updates_now).unwrap();
                applied.extend(updates_now.iter().cloned());
                update_batches += 1;
            }

            // Oracle for this round: a fresh engine on the current state.
            let snapshot = base.with_updates(&applied).unwrap();
            let oracle = engine_on(&snapshot, BackendKind::Mem, RegionConfig::default(), 1);

            let events_now = drift_stream.events()
                .chunks(drift_chunk.max(1))
                .nth(round)
                .unwrap_or(&[]);
            let answers = manager.ingest(events_now).unwrap();
            prop_assert_eq!(answers.len(), events_now.len());
            events_seen += events_now.len() as u64;
            for (event, answer) in events_now.iter().zip(&answers) {
                let q = &mut current[event.sub as usize];
                *q = q.with_weight_shift(event.dim, event.delta).unwrap();
                prop_assert_eq!(answer.sub, event.sub);
                let fresh = oracle.query(q).unwrap();
                prop_assert_eq!(
                    &answer.result,
                    &fresh.current_result(),
                    "round {}: {:?} answer deviates from the current-state oracle",
                    round,
                    answer.kind
                );
            }

            // Every member report is oracle-identical right now — drift-
            // refreshed, update-invalidated and untouched members alike.
            // The cached report is relative to the member's ANCHOR (a
            // locally-served member carries drifted `current` weights but
            // keeps serving from the anchor's report).
            for member in manager.members() {
                prop_assert!(!member.is_stale());
                let fresh = oracle.query(member.anchor()).unwrap();
                prop_assert_eq!(
                    &member.report().dims,
                    &fresh.dims,
                    "round {}: member {} report deviates",
                    round,
                    member.id()
                );
            }
        }

        // Conservation across both kinds of traffic.
        let stats = manager.stats();
        prop_assert_eq!(stats.events, events_seen);
        prop_assert_eq!(stats.local_answers + stats.recomputes, stats.events);
        prop_assert_eq!(stats.updates_applied, applied.len() as u64);
        prop_assert_eq!(
            stats.regions_survived + stats.regions_punctured,
            update_batches * fleet.len() as u64
        );
        let health = engine.health();
        prop_assert_eq!(health.fleet_local_answers, stats.local_answers);
        prop_assert_eq!(health.fleet_recomputes, stats.recomputes);
        prop_assert_eq!(health.updates_applied, stats.updates_applied);
        prop_assert_eq!(health.regions_survived, stats.regions_survived);
        prop_assert_eq!(health.regions_punctured, stats.regions_punctured);
        prop_assert_eq!(manager.pending_recomputes(), 0);
    }
}
