//! End-to-end runs on the three synthetic workloads (scaled down), checking
//! the qualitative claims of the evaluation section: all methods agree on
//! the regions, pruning/thresholding reduce the number of evaluated
//! candidates, and the candidate-partition structure matches the dataset
//! type (Figure 6).

use immutable_regions::prelude::*;
use ir_core::partition::Partition;
use ir_datagen::queries::DimSelection;

fn run_workload(dataset: &Dataset, workload: &QueryWorkload) -> Vec<(Algorithm, u64)> {
    let index = TopKIndex::build_in_memory(dataset).unwrap();
    let mut totals = Vec::new();
    for algorithm in Algorithm::ALL {
        let mut evaluated = 0u64;
        let mut regions: Vec<Vec<(f64, f64)>> = Vec::new();
        for query in workload.iter() {
            let mut computation =
                RegionComputation::new(&index, query, RegionConfig::flat(algorithm)).unwrap();
            let report = computation.compute().unwrap();
            evaluated += report.stats.evaluated_candidates;
            regions.push(
                report
                    .dims
                    .iter()
                    .map(|d| (d.immutable.lo, d.immutable.hi))
                    .collect(),
            );
        }
        totals.push((algorithm, evaluated, regions));
    }
    // All algorithms must agree on every region of every query.
    let reference = &totals[0].2;
    for (algorithm, _, regions) in &totals {
        for (qr, rr) in regions.iter().zip(reference) {
            for ((lo, hi), (rlo, rhi)) in qr.iter().zip(rr) {
                assert!(
                    (lo - rlo).abs() < 1e-9 && (hi - rhi).abs() < 1e-9,
                    "{} disagrees with {}",
                    algorithm.name(),
                    totals[0].0.name()
                );
            }
        }
    }
    totals
        .into_iter()
        .map(|(a, evaluated, _)| (a, evaluated))
        .collect()
}

#[test]
fn text_corpus_workload_pruning_dominates() {
    let dataset = TextCorpusGenerator::new(TextCorpusConfig {
        num_docs: 2_000,
        vocabulary: 1_500,
        mean_distinct_terms: 20.0,
        zipf_exponent: 1.0,
    })
    .generate_corpus(5);
    let workload = QueryWorkload::generate(
        &dataset,
        &WorkloadConfig {
            qlen: 3,
            k: 10,
            num_queries: 8,
            min_postings: 30,
            max_postings: usize::MAX,
            selection: DimSelection::PopularityBiased,
            equal_weights: false,
        },
        1,
    )
    .unwrap();
    let totals = run_workload(&dataset, &workload);
    let get = |alg: Algorithm| totals.iter().find(|(a, _)| *a == alg).unwrap().1;
    // On sparse text data pruning eliminates most candidates, and CPT is at
    // least as good as every other method.
    assert!(get(Algorithm::Prune) < get(Algorithm::Scan));
    assert!(get(Algorithm::Cpt) <= get(Algorithm::Prune));
    assert!(get(Algorithm::Cpt) <= get(Algorithm::Thres));
}

#[test]
fn correlated_workload_thresholding_dominates() {
    let dataset = CorrelatedGenerator::new(CorrelatedConfig {
        cardinality: 2_000,
        dimensionality: 10,
        correlation: 0.5,
    })
    .generate_dataset(5);
    let workload = QueryWorkload::generate(
        &dataset,
        &WorkloadConfig {
            qlen: 3,
            k: 10,
            num_queries: 6,
            min_postings: 30,
            max_postings: usize::MAX,
            ..Default::default()
        },
        2,
    )
    .unwrap();
    let totals = run_workload(&dataset, &workload);
    let get = |alg: Algorithm| totals.iter().find(|(a, _)| *a == alg).unwrap().1;
    // On correlated data pruning barely helps (C^L dominates), thresholding
    // is what reduces the work; CPT tracks Thres.
    assert!(get(Algorithm::Thres) < get(Algorithm::Scan));
    assert!(get(Algorithm::Cpt) <= get(Algorithm::Thres));
    assert!(get(Algorithm::Cpt) < get(Algorithm::Scan));
}

#[test]
fn feature_vector_workload_all_methods_agree() {
    let dataset = FeatureVectorGenerator::new(FeatureConfig {
        num_images: 1_500,
        num_features: 256,
        latent_factors: 12,
        activation_rate: 0.12,
    })
    .generate_dataset(5);
    let workload = QueryWorkload::generate(
        &dataset,
        &WorkloadConfig {
            qlen: 4,
            k: 10,
            num_queries: 5,
            min_postings: 30,
            max_postings: usize::MAX,
            ..Default::default()
        },
        3,
    )
    .unwrap();
    let totals = run_workload(&dataset, &workload);
    let get = |alg: Algorithm| totals.iter().find(|(a, _)| *a == alg).unwrap().1;
    assert!(get(Algorithm::Cpt) <= get(Algorithm::Scan));
}

#[test]
fn candidate_partition_structure_matches_figure_6() {
    // WSJ-like data: C^L is (nearly) empty — candidates live on one axis.
    let text = TextCorpusGenerator::new(TextCorpusConfig {
        num_docs: 2_000,
        vocabulary: 1_500,
        mean_distinct_terms: 15.0,
        zipf_exponent: 1.0,
    })
    .generate_corpus(9);
    let text_index = TopKIndex::build_in_memory(&text).unwrap();
    // The paper selects query terms uniformly at random from the (huge)
    // vocabulary; with popularity-biased terms the co-occurrence rate would
    // be artificially high and C^L would not be small. At this smoke scale a
    // stopword cut (`max_postings`) is needed for the same reason: a
    // 1500-term vocabulary makes drawing a term that occurs in most
    // documents quite likely, while in the paper's 181k-term WSJ vocabulary
    // it is vanishingly rare.
    let text_query = QueryWorkload::generate(
        &text,
        &WorkloadConfig {
            qlen: 4,
            k: 10,
            num_queries: 1,
            min_postings: 25,
            max_postings: 200,
            selection: DimSelection::Uniform,
            equal_weights: true,
        },
        4,
    )
    .unwrap()
    .queries()[0]
        .clone();
    let text_rc =
        RegionComputation::new(&text_index, &text_query, RegionConfig::default()).unwrap();
    let entries = text_rc.ta().candidates().entries().to_vec();
    assert!(!entries.is_empty());
    let p = Partition::classify(&entries, 0);
    let sizes = p.sizes();
    assert!(
        sizes.low <= (sizes.zero + sizes.high) / 4 + 1,
        "sparse text should have few C^L candidates: {sizes:?}"
    );

    // ST data: C^L dominates.
    let st = CorrelatedGenerator::new(CorrelatedConfig {
        cardinality: 2_000,
        dimensionality: 10,
        correlation: 0.5,
    })
    .generate_dataset(9);
    let st_index = TopKIndex::build_in_memory(&st).unwrap();
    let st_query = QueryVector::new([(0, 1.0), (3, 1.0), (6, 1.0), (9, 1.0)], 10).unwrap();
    let st_rc = RegionComputation::new(&st_index, &st_query, RegionConfig::default()).unwrap();
    let st_entries = st_rc.ta().candidates().entries().to_vec();
    assert!(!st_entries.is_empty());
    let sp = Partition::classify(&st_entries, 0).sizes();
    assert!(
        sp.low > sp.high && sp.low > sp.zero,
        "correlated data should be dominated by C^L: {sp:?}"
    );
}
