//! Scan, Prune, Thres and CPT must produce *identical* immutable regions —
//! they only differ in how many candidates they examine. This test checks
//! that claim, and checks all four against the exhaustive oracle, on a range
//! of randomized datasets and queries.

use immutable_regions::prelude::*;
use ir_core::config::PerturbationMode;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A small random dataset with mixed sparsity (some tuples touch every
/// dimension, some only one) so that all three candidate partitions occur.
fn random_dataset(rng: &mut ChaCha8Rng, n: usize, dims: u32) -> Dataset {
    let mut builder = DatasetBuilder::new(dims);
    for _ in 0..n {
        let style: f64 = rng.gen();
        let pairs: Vec<(u32, f64)> = if style < 0.4 {
            // Single-dimension tuple.
            vec![(rng.gen_range(0..dims), rng.gen_range(0.05..1.0))]
        } else if style < 0.7 {
            // A couple of dimensions.
            let a = rng.gen_range(0..dims);
            let mut b = rng.gen_range(0..dims);
            while b == a {
                b = rng.gen_range(0..dims);
            }
            vec![(a, rng.gen_range(0.05..1.0)), (b, rng.gen_range(0.05..1.0))]
        } else {
            // Dense tuple.
            (0..dims).map(|d| (d, rng.gen_range(0.01..1.0))).collect()
        };
        builder.push_pairs(pairs).unwrap();
    }
    builder.build()
}

fn random_query(rng: &mut ChaCha8Rng, dims: u32, qlen: usize, k: usize) -> QueryVector {
    let mut chosen = Vec::new();
    while chosen.len() < qlen {
        let d = rng.gen_range(0..dims);
        if !chosen.contains(&d) {
            chosen.push(d);
        }
    }
    QueryVector::new(chosen.into_iter().map(|d| (d, rng.gen_range(0.2..=1.0))), k).unwrap()
}

#[test]
fn all_algorithms_agree_with_each_other_and_the_oracle() {
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    for trial in 0..12 {
        let dims = rng.gen_range(3..7);
        let n = rng.gen_range(30..120);
        let dataset = random_dataset(&mut rng, n, dims);
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        let k = rng.gen_range(1..6);
        let qlen = rng.gen_range(2..=dims.min(4)) as usize;
        let query = random_query(&mut rng, dims, qlen, k);
        let oracle = ExhaustiveOracle::new(&dataset, query.clone());

        let mut reference: Option<RegionReport> = None;
        for algorithm in Algorithm::ALL {
            let mut computation =
                RegionComputation::new(&index, &query, RegionConfig::flat(algorithm)).unwrap();
            let report = computation.compute().unwrap();
            // Against the oracle.
            for dim_regions in &report.dims {
                let expected =
                    oracle.regions(dim_regions.dim, 0, PerturbationMode::WithReorderings);
                assert!(
                    dim_regions.immutable.approx_eq(&expected.immutable, 1e-9),
                    "trial {trial}, {} dim {}: got {:?}, oracle {:?} (query {:?})",
                    algorithm.name(),
                    dim_regions.dim,
                    dim_regions.immutable,
                    expected.immutable,
                    query,
                );
            }
            // Against the other algorithms.
            if let Some(reference) = &reference {
                for (a, b) in reference.dims.iter().zip(&report.dims) {
                    assert!(
                        a.immutable.approx_eq(&b.immutable, 1e-9),
                        "trial {trial}: {} disagrees with Scan on {:?}",
                        algorithm.name(),
                        a.dim
                    );
                }
            } else {
                reference = Some(report);
            }
        }
    }
}

#[test]
fn composition_only_mode_agrees_with_the_oracle() {
    let mut rng = ChaCha8Rng::seed_from_u64(777);
    for _ in 0..8 {
        let dims = rng.gen_range(3..6);
        let dataset = random_dataset(&mut rng, 60, dims);
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        let query = random_query(&mut rng, dims, 2, 3);
        let oracle = ExhaustiveOracle::new(&dataset, query.clone());
        for algorithm in [Algorithm::Scan, Algorithm::Cpt] {
            let mut computation = RegionComputation::new(
                &index,
                &query,
                RegionConfig::flat(algorithm).composition_only(),
            )
            .unwrap();
            let report = computation.compute().unwrap();
            for dim_regions in &report.dims {
                let expected =
                    oracle.regions(dim_regions.dim, 0, PerturbationMode::CompositionOnly);
                assert!(
                    dim_regions.immutable.approx_eq(&expected.immutable, 1e-9),
                    "{} dim {}: got {:?}, oracle {:?}",
                    algorithm.name(),
                    dim_regions.dim,
                    dim_regions.immutable,
                    expected.immutable
                );
            }
        }
    }
}

#[test]
fn pruning_and_thresholding_never_evaluate_more_than_scan() {
    let mut rng = ChaCha8Rng::seed_from_u64(5150);
    for _ in 0..6 {
        let dims = rng.gen_range(4..8);
        let dataset = random_dataset(&mut rng, 150, dims);
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        let query = random_query(&mut rng, dims, 3, 5);

        let evaluated = |algorithm: Algorithm| {
            let mut computation =
                RegionComputation::new(&index, &query, RegionConfig::flat(algorithm)).unwrap();
            computation.compute().unwrap().stats.evaluated_candidates
        };
        let scan = evaluated(Algorithm::Scan);
        assert!(evaluated(Algorithm::Prune) <= scan);
        assert!(evaluated(Algorithm::Thres) <= scan);
        assert!(evaluated(Algorithm::Cpt) <= scan);
    }
}
