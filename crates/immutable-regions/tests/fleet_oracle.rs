//! Fleet oracle: every answer the [`SubscriptionManager`] serves — local
//! check or batched recompute — is byte-identical to a fresh
//! per-subscription recompute at the event's cumulative weights.
//!
//! The matrix covers all four algorithms × the mem and file backends
//! (plus mmap with the `mmap` feature) × 1/2/8 batch workers. Within one
//! algorithm, the complete serving trace (every [`FleetAnswer`], in
//! order) must additionally be identical across backends and worker
//! counts, and every member's re-anchored report must match a fresh
//! recompute at its final anchor.

use immutable_regions::prelude::*;
use ir_core::Algorithm;

/// Deterministic 160 × 5 dataset (the chaos-suite workload).
fn dataset() -> Dataset {
    let mut builder = DatasetBuilder::new(5);
    for i in 0..160u32 {
        let pairs: Vec<(u32, f64)> = (0..5u32)
            .map(|d| (d, (((i * 31 + d * 17) % 97) + 1) as f64 / 98.0))
            .collect();
        builder.push_pairs(pairs).unwrap();
    }
    builder.build()
}

/// Eight deterministic 3-dimensional subscriptions, k = 4.
fn fleet() -> Vec<(u64, QueryVector)> {
    (0..8u32)
        .map(|i| {
            let q = QueryVector::new(
                [
                    (i % 5, 0.2 + 0.1 * (i % 4) as f64),
                    ((i + 1) % 5, 0.9 - 0.1 * (i % 3) as f64),
                    ((i + 2) % 5, 0.5),
                ],
                4,
            )
            .unwrap();
            (i as u64, q)
        })
        .collect()
}

fn backend_names() -> Vec<&'static str> {
    let mut names = vec!["mem", "file"];
    if cfg!(feature = "mmap") {
        names.push("mmap");
    }
    names
}

fn build_engine(backend: &str, threads: usize, algorithm: Algorithm) -> IrEngine {
    let dataset = dataset();
    let dir = tempfile::tempdir().unwrap();
    let storage = match backend {
        "mem" => StorageBackend::Memory,
        "file" => StorageBackend::Disk(dir.path().to_path_buf()),
        "mmap" => StorageBackend::Mmap(dir.path().to_path_buf()),
        other => panic!("unknown backend {other}"),
    };
    IrEngine::builder()
        .dataset_ref(&dataset)
        .backend(storage)
        .threads(threads)
        .build()
        .unwrap()
        .with_config(RegionConfig::flat(algorithm))
}

#[test]
fn every_fleet_answer_matches_a_fresh_recompute() {
    let fleet = fleet();
    let stream = DriftStream::generate(
        &fleet,
        &DriftConfig {
            num_events: 60,
            zipf_exponent: 1.0,
            small_delta: 0.01,
            large_delta: 0.35,
            large_every: 6,
        },
        0xAC1E,
    )
    .unwrap();

    for algorithm in Algorithm::ALL {
        // The fault-free sequential oracle this algorithm's cells compare
        // against, plus the reference serving trace of the first cell.
        let oracle = build_engine("mem", 1, algorithm);
        let mut reference: Option<Vec<FleetAnswer>> = None;

        for backend in backend_names() {
            for threads in [1usize, 2, 8] {
                let engine = build_engine(backend, threads, algorithm);
                let mut manager = SubscriptionManager::new(
                    &engine,
                    FleetConfig {
                        max_batch: 5,
                        ..FleetConfig::default()
                    },
                )
                .unwrap();
                manager.admit_all(fleet.clone()).unwrap();

                let answers = manager.ingest(stream.events()).unwrap();
                assert_eq!(answers.len(), stream.len());

                // (1) Oracle: each answer equals a fresh recompute at the
                // event's cumulative weights.
                let mut current: Vec<QueryVector> = fleet.iter().map(|(_, q)| q.clone()).collect();
                for (event, answer) in stream.iter().zip(&answers) {
                    let q = &mut current[event.sub as usize];
                    *q = q.with_weight_shift(event.dim, event.delta).unwrap();
                    assert_eq!(answer.sub, event.sub);
                    let fresh = oracle.query(q).unwrap();
                    assert_eq!(
                        answer.result,
                        fresh.current_result(),
                        "{algorithm} × {backend} × {threads}w, seq {}: fleet answer deviates \
                         from a fresh recompute ({:?})",
                        answer.seq,
                        answer.kind,
                    );
                }

                // (2) Every member's re-anchored cached state matches a
                // fresh recompute at its final anchor.
                for member in manager.members() {
                    let fresh = oracle.query(member.anchor()).unwrap();
                    assert_eq!(member.report().dims, fresh.dims);
                    assert_eq!(member.result(), fresh.current_result());
                    assert_eq!(
                        member.report().stats.evaluated_per_dim,
                        fresh.stats.evaluated_per_dim
                    );
                }

                // (3) The serving trace is byte-identical across backends
                // and worker counts.
                match &reference {
                    None => reference = Some(answers),
                    Some(reference) => assert_eq!(
                        reference, &answers,
                        "{algorithm} × {backend} × {threads}w: serving trace deviates"
                    ),
                }
            }
        }
    }
}

#[test]
fn serving_traces_share_results_across_algorithms() {
    // All four algorithms compute the same exact regions, so the fleet's
    // answers (ids, kinds, sequence) — though not their costs — must
    // agree across algorithms as well.
    let fleet = fleet();
    let stream = DriftStream::generate(
        &fleet,
        &DriftConfig {
            num_events: 40,
            zipf_exponent: 1.0,
            small_delta: 0.01,
            large_delta: 0.35,
            large_every: 6,
        },
        0xCAFE,
    )
    .unwrap();

    type AnswerShape = (u64, u64, AnswerKind, Vec<TupleId>);
    let mut shapes: Vec<Vec<AnswerShape>> = Vec::new();
    for algorithm in Algorithm::ALL {
        let engine = build_engine("mem", 2, algorithm);
        let mut manager = SubscriptionManager::new(&engine, FleetConfig::default()).unwrap();
        manager.admit_all(fleet.clone()).unwrap();
        let answers = manager.ingest(stream.events()).unwrap();
        shapes.push(
            answers
                .into_iter()
                .map(|a| (a.seq, a.sub, a.kind, a.result))
                .collect(),
        );
    }
    for other in &shapes[1..] {
        assert_eq!(&shapes[0], other);
    }
}
