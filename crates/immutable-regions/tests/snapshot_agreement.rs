//! Snapshot-agreement suite: serving from a persisted snapshot must never
//! leak into query output.
//!
//! For every algorithm, worker count and serving backend, an engine
//! reopened from a saved snapshot must produce *byte-identical* region
//! reports and deterministic counters to the engine the snapshot was saved
//! from: same intervals (bitwise), same evaluated-candidate counts, same
//! logical reads. The snapshot stores the exact pages the builder wrote,
//! so any divergence is a bug in the snapshot writer or reader, not a
//! legitimate difference.
//!
//! Seeded like the other property suites so failures reproduce exactly.

use immutable_regions::engine::{EngineError, IrEngine};
use immutable_regions::prelude::*;
use ir_storage::{BackendKind, ColdStartSource, FaultPlan, StorageBackend};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::path::Path;

/// A small random dataset with mixed sparsity, same idiom as
/// `backend_agreement`.
fn random_dataset(rng: &mut ChaCha8Rng, n: usize, dims: u32) -> Dataset {
    let mut builder = DatasetBuilder::new(dims);
    for _ in 0..n {
        let style: f64 = rng.gen();
        let pairs: Vec<(u32, f64)> = if style < 0.4 {
            vec![(rng.gen_range(0..dims), rng.gen_range(0.05..1.0))]
        } else if style < 0.7 {
            let a = rng.gen_range(0..dims);
            let mut b = rng.gen_range(0..dims);
            while b == a {
                b = rng.gen_range(0..dims);
            }
            vec![(a, rng.gen_range(0.05..1.0)), (b, rng.gen_range(0.05..1.0))]
        } else {
            (0..dims).map(|d| (d, rng.gen_range(0.01..1.0))).collect()
        };
        builder.push_pairs(pairs).unwrap();
    }
    builder.build()
}

fn random_batch(rng: &mut ChaCha8Rng, dims: u32, queries: usize) -> Vec<QueryVector> {
    (0..queries)
        .map(|_| {
            let qlen = rng.gen_range(2..=dims.min(4)) as usize;
            let k = rng.gen_range(1..6);
            let mut chosen = Vec::new();
            while chosen.len() < qlen {
                let d = rng.gen_range(0..dims);
                if !chosen.contains(&d) {
                    chosen.push(d);
                }
            }
            QueryVector::new(chosen.into_iter().map(|d| (d, rng.gen_range(0.2..=1.0))), k).unwrap()
        })
        .collect()
}

/// The backends a snapshot can be served from in this build.
fn serving_backends() -> Vec<BackendKind> {
    let mut kinds = vec![BackendKind::Mem, BackendKind::File];
    if cfg!(feature = "mmap") {
        kinds.push(BackendKind::Mmap);
    }
    kinds
}

/// Reopens the snapshot in `dir` on the requested backend kind.
fn reopen(dir: &Path, kind: BackendKind, config: RegionConfig, threads: usize) -> IrEngine {
    let backend = match kind {
        BackendKind::Mem => StorageBackend::Memory,
        BackendKind::File => StorageBackend::Disk(dir.to_path_buf()),
        BackendKind::Mmap => StorageBackend::Mmap(dir.to_path_buf()),
    };
    IrEngine::builder()
        .open_snapshot(dir)
        .backend(backend)
        .config(config)
        .threads(threads)
        .build()
        .unwrap_or_else(|e| panic!("reopening snapshot on {kind}: {e}"))
}

/// Core requirement: for every algorithm × worker count × serving backend,
/// batch output from the snapshot-served engine is identical to the
/// built-index oracle — regions, evaluated candidates and logical reads
/// alike.
#[test]
fn snapshot_served_engines_agree_with_built_oracle() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5AFE_5EED);
    for algorithm in Algorithm::ALL {
        let dims = rng.gen_range(3..7);
        let n = rng.gen_range(40..120);
        let dataset = random_dataset(&mut rng, n, dims);
        let queries = random_batch(&mut rng, dims, 4);
        let config = RegionConfig::flat(algorithm);

        let oracle_engine = IrEngine::builder()
            .dataset_ref(&dataset)
            .config(config)
            .build()
            .unwrap();
        let dir = tempfile::tempdir().unwrap();
        let snap = dir.path().join("snap");
        oracle_engine.save_snapshot(&snap).unwrap();
        let oracle: Vec<RegionReport> = queries
            .iter()
            .map(|q| {
                oracle_engine.cold_start();
                oracle_engine.query(q).unwrap()
            })
            .collect();

        for backend in serving_backends() {
            for threads in [1usize, 2, 8] {
                let engine = reopen(&snap, backend, config, threads);
                assert_eq!(
                    engine.cold_start_info().source,
                    ColdStartSource::Snapshot,
                    "{algorithm} backend={backend}"
                );
                let reports = engine.query_batch(&queries).unwrap();
                assert_eq!(reports.len(), oracle.len());
                for (qi, (expected, actual)) in oracle.iter().zip(&reports).enumerate() {
                    let context =
                        format!("{algorithm} backend={backend} threads={threads} query={qi}");
                    assert_eq!(
                        expected.dims, actual.dims,
                        "{context}: regions must be byte-identical from a snapshot"
                    );
                    assert_eq!(
                        expected.stats.evaluated_per_dim, actual.stats.evaluated_per_dim,
                        "{context}: evaluated candidates differ"
                    );
                    assert_eq!(
                        expected.stats.io.logical_reads, actual.stats.io.logical_reads,
                        "{context}: logical reads differ"
                    );
                }
            }
        }
    }
}

/// φ-level perturbations go through the tuple store; they must survive the
/// snapshot too.
#[test]
fn snapshot_agreement_holds_with_phi_perturbations() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x05AF_E0F1);
    for phi in [1usize, 3] {
        let dims = rng.gen_range(3..6);
        let dataset = random_dataset(&mut rng, 80, dims);
        let queries = random_batch(&mut rng, dims, 3);
        let config = RegionConfig::with_phi(Algorithm::Cpt, phi);

        let oracle_engine = IrEngine::builder()
            .dataset_ref(&dataset)
            .config(config)
            .build()
            .unwrap();
        let dir = tempfile::tempdir().unwrap();
        let snap = dir.path().join("snap");
        oracle_engine.save_snapshot(&snap).unwrap();
        let oracle: Vec<RegionReport> = queries
            .iter()
            .map(|q| {
                oracle_engine.cold_start();
                oracle_engine.query(q).unwrap()
            })
            .collect();

        for backend in serving_backends() {
            let engine = reopen(&snap, backend, config, 2);
            let reports = engine.query_batch(&queries).unwrap();
            for (expected, actual) in oracle.iter().zip(&reports) {
                assert_eq!(
                    expected.dims, actual.dims,
                    "phi={phi} backend={backend}: perturbed regions diverge"
                );
            }
        }
    }
}

/// Injected device faults during a snapshot open surface as typed engine
/// errors naming the snapshot directory — never a panic — on every
/// serving backend.
#[test]
fn armed_faults_during_snapshot_open_never_panic() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5AFE_FA17);
    let dataset = random_dataset(&mut rng, 60, 4);
    let engine = IrEngine::builder().dataset_ref(&dataset).build().unwrap();
    let dir = tempfile::tempdir().unwrap();
    let snap = dir.path().join("snap");
    engine.save_snapshot(&snap).unwrap();

    for kind in serving_backends() {
        let backend = match kind {
            BackendKind::Mem => StorageBackend::Memory,
            BackendKind::File => StorageBackend::Disk(snap.clone()),
            BackendKind::Mmap => StorageBackend::Mmap(snap.clone()),
        };
        let err = IrEngine::builder()
            .open_snapshot(&snap)
            .backend(backend)
            .fault_plan(FaultPlan::device_outage(0, None))
            .build()
            .map(|_| ())
            .unwrap_err();
        assert!(
            matches!(err, EngineError::SnapshotOpen { .. }),
            "{kind}: expected a typed snapshot-open error, got {err:?}"
        );
        let message = err.to_string();
        assert!(
            message.contains("injected") && message.contains("snap"),
            "{kind}: `{message}` must name both the fault and the directory"
        );
    }
}
