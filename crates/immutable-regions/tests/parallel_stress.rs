//! Concurrency stress suite: proptest-driven random query batches hammer
//! one shared index and buffer pool at several worker counts.
//!
//! Invariants under stress:
//!
//! * no worker panics and every query produces a report,
//! * the merged per-worker buffer statistics equal the pool's global delta
//!   (the sharded counters merge losslessly — nothing double counted,
//!   nothing dropped),
//! * reports are identical across worker counts (determinism survives
//!   contention).

use immutable_regions::prelude::*;
use ir_storage::IoStatsSnapshot;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn build_dataset(seed: u64, n: usize, dims: u32) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut builder = DatasetBuilder::new(dims);
    for _ in 0..n {
        let nnz = rng.gen_range(1..=dims);
        let mut pairs = Vec::new();
        for d in 0..dims {
            if pairs.len() < nnz as usize && rng.gen::<f64>() < 0.7 {
                pairs.push((d, rng.gen_range(0.01..1.0)));
            }
        }
        if pairs.is_empty() {
            pairs.push((rng.gen_range(0..dims), rng.gen_range(0.01..1.0)));
        }
        builder.push_pairs(pairs).unwrap();
    }
    builder.build()
}

fn build_queries(seed: u64, dims: u32, count: usize, k: usize) -> Vec<QueryVector> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xABCD);
    (0..count)
        .map(|_| {
            let qlen = rng.gen_range(2..=dims.min(4)) as usize;
            let mut chosen = Vec::new();
            while chosen.len() < qlen {
                let d = rng.gen_range(0..dims);
                if !chosen.contains(&d) {
                    chosen.push(d);
                }
            }
            QueryVector::new(chosen.into_iter().map(|d| (d, rng.gen_range(0.1..=1.0))), k).unwrap()
        })
        .collect()
}

fn sum(snapshots: &[IoStatsSnapshot]) -> IoStatsSnapshot {
    snapshots
        .iter()
        .fold(IoStatsSnapshot::default(), |acc, s| acc.plus(s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10).with_seed(0x57E5_5001))]

    /// Random batches at 1/2/4/8 workers over one shared pool: merged
    /// per-worker stats must equal the pool delta, and reports must not
    /// depend on the worker count.
    #[test]
    fn merged_worker_stats_equal_pool_delta(
        seed in 0u64..10_000,
        num_queries in 1usize..10,
        k in 1usize..6,
        phi in 0usize..3,
    ) {
        let dims = 5u32;
        let dataset = build_dataset(seed, 120, dims);
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        let queries = build_queries(seed, dims, num_queries, k);
        let config = RegionConfig::with_phi(Algorithm::Cpt, phi);

        let mut baseline: Option<Vec<RegionReport>> = None;
        for workers in [1usize, 2, 4, 8] {
            let before = index.io_snapshot();
            let outcome = BatchRegionComputation::new(&index, config)
                .with_threads(workers)
                .run_detailed(&queries)
                .unwrap();
            let delta = index.io_snapshot().since(&before);

            // Lossless merge: what the workers self-reported is exactly
            // what the pool observed — nothing lost, nothing double
            // counted, even with every worker on the same pool.
            prop_assert_eq!(
                sum(&outcome.worker_io), delta,
                "workers = {}", workers
            );
            prop_assert!(delta.logical_reads > 0);
            prop_assert_eq!(outcome.reports.len(), queries.len());

            match &baseline {
                None => baseline = Some(outcome.reports),
                Some(expected) => {
                    for (e, r) in expected.iter().zip(&outcome.reports) {
                        prop_assert_eq!(&e.dims, &r.dims, "workers = {}", workers);
                    }
                }
            }
        }
    }
}

/// Two batches run *concurrently* against the same index: their combined
/// per-worker tallies must still account for every page access the pool
/// served, and both must agree with a sequential reference run.
#[test]
fn concurrent_batches_share_one_pool_losslessly() {
    let dims = 5u32;
    let dataset = build_dataset(0xFEED, 200, dims);
    let index = TopKIndex::build_in_memory(&dataset).unwrap();
    let queries_a = build_queries(1, dims, 8, 4);
    let queries_b = build_queries(2, dims, 8, 3);
    let config = RegionConfig::default();

    let reference_a = BatchRegionComputation::new(&index, config)
        .run(&queries_a)
        .unwrap();
    let reference_b = BatchRegionComputation::new(&index, config)
        .run(&queries_b)
        .unwrap();

    index.reset_io_stats();
    let before = index.io_snapshot();
    let (outcome_a, outcome_b) = std::thread::scope(|scope| {
        let handle_a = scope.spawn(|| {
            BatchRegionComputation::new(&index, config)
                .with_threads(4)
                .run_detailed(&queries_a)
                .unwrap()
        });
        let handle_b = scope.spawn(|| {
            BatchRegionComputation::new(&index, config)
                .with_threads(4)
                .run_detailed(&queries_b)
                .unwrap()
        });
        (handle_a.join().unwrap(), handle_b.join().unwrap())
    });
    let delta = index.io_snapshot().since(&before);

    assert_eq!(
        outcome_a.total_io().plus(&outcome_b.total_io()),
        delta,
        "two concurrent batches must account for every pool access between them"
    );
    for (expected, report) in reference_a.iter().zip(&outcome_a.reports) {
        assert_eq!(expected.dims, report.dims);
    }
    for (expected, report) in reference_b.iter().zip(&outcome_b.reports) {
        assert_eq!(expected.dims, report.dims);
    }
}

/// A long-lived hammering run: many repeated batches over a cold-started
/// pool keep the per-worker/global agreement and never panic.
#[test]
fn repeated_batches_keep_stats_consistent() {
    let dims = 4u32;
    let dataset = build_dataset(0xBEEF, 150, dims);
    let index = TopKIndex::build_in_memory(&dataset).unwrap();
    index.cold_start();
    let before_all = index.io_snapshot();
    let mut accounted = IoStatsSnapshot::default();
    for round in 0..6u64 {
        let queries = build_queries(round, dims, 5, 2 + (round as usize % 3));
        let outcome = BatchRegionComputation::new(&index, RegionConfig::default())
            .with_threads(1 + (round as usize % 4))
            .run_detailed(&queries)
            .unwrap();
        accounted = accounted.plus(&outcome.total_io());
    }
    let delta = index.io_snapshot().since(&before_all);
    assert_eq!(accounted, delta);
    assert!(delta.physical_reads > 0, "cold start must hit the store");
}
