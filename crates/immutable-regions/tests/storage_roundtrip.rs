//! The disk-backed storage path: building the index on real files, running
//! TA and the region computation through the buffer pool, and checking that
//! the I/O accounting behaves sensibly.

use immutable_regions::prelude::*;
use immutable_regions::storage::PAGE_SIZE;

fn medium_dataset() -> Dataset {
    // Deterministic mixed-sparsity dataset, large enough to span many pages.
    let dims = 24u32;
    let mut builder = DatasetBuilder::new(dims);
    for i in 0..2_000u32 {
        let nnz = 1 + (i % 7);
        let pairs: Vec<(u32, f64)> = (0..nnz)
            .map(|j| {
                let d = (i * 13 + j * 7) % dims;
                let v = (((i * 31 + j * 17) % 97) + 1) as f64 / 100.0;
                (d, v)
            })
            .collect::<std::collections::BTreeMap<u32, f64>>()
            .into_iter()
            .collect();
        builder.push_pairs(pairs).unwrap();
    }
    builder.build()
}

#[test]
fn disk_backed_index_produces_the_same_regions_as_memory() {
    let dataset = medium_dataset();
    let dir = tempfile::tempdir().unwrap();
    let disk_index = IndexBuilder::new()
        .backend(StorageBackend::Disk(dir.path().to_path_buf()))
        .pool_capacity(64)
        .build(&dataset)
        .unwrap();
    let mem_index = TopKIndex::build_in_memory(&dataset).unwrap();
    let query = QueryVector::new([(0, 0.9), (5, 0.6), (11, 0.3)], 10).unwrap();

    let mut disk_rc =
        RegionComputation::new(&disk_index, &query, RegionConfig::flat(Algorithm::Cpt)).unwrap();
    let disk_report = disk_rc.compute().unwrap();
    let mut mem_rc =
        RegionComputation::new(&mem_index, &query, RegionConfig::flat(Algorithm::Cpt)).unwrap();
    let mem_report = mem_rc.compute().unwrap();

    assert_eq!(disk_rc.result().ids(), mem_rc.result().ids());
    for (a, b) in disk_report.dims.iter().zip(&mem_report.dims) {
        assert!(a.immutable.approx_eq(&b.immutable, 1e-12));
    }
    // The page file exists and holds at least the tuple region.
    let page_file = dir.path().join("index.pages");
    let len = std::fs::metadata(&page_file).unwrap().len();
    assert!(len >= PAGE_SIZE as u64);
}

#[test]
fn small_buffer_pool_forces_physical_rereads() {
    let dataset = medium_dataset();
    let query = QueryVector::new([(0, 0.9), (5, 0.6)], 10).unwrap();

    let tight = IndexBuilder::new()
        .pool_capacity(2)
        .build(&dataset)
        .unwrap();
    let roomy = IndexBuilder::new()
        .pool_capacity(4096)
        .build(&dataset)
        .unwrap();

    for index in [&tight, &roomy] {
        index.cold_start();
        let mut rc =
            RegionComputation::new(index, &query, RegionConfig::flat(Algorithm::Scan)).unwrap();
        let _ = rc.compute().unwrap();
    }
    let tight_phys = tight.io_snapshot().physical_reads;
    let roomy_phys = roomy.io_snapshot().physical_reads;
    assert!(
        tight_phys > roomy_phys,
        "a 2-page pool ({tight_phys}) must re-read more than a 4096-page pool ({roomy_phys})"
    );
    // Logical reads are identical — the access pattern does not depend on
    // the pool size.
    assert_eq!(
        tight.io_snapshot().logical_reads,
        roomy.io_snapshot().logical_reads
    );
}

#[test]
fn io_latency_model_converts_physical_reads_to_time() {
    let dataset = medium_dataset();
    let index = IndexBuilder::new()
        .io_config(IoConfig::default())
        .pool_capacity(8)
        .build(&dataset)
        .unwrap();
    let query = QueryVector::new([(2, 0.8), (7, 0.5)], 5).unwrap();
    index.cold_start();
    let mut rc =
        RegionComputation::new(&index, &query, RegionConfig::flat(Algorithm::Cpt)).unwrap();
    let report = rc.compute().unwrap();
    let io_time = index
        .io_config()
        .simulated_io_time(&report.stats.io.plus(&report.stats.topk_io));
    assert!(
        io_time.as_micros() > 0,
        "physical reads must cost simulated time"
    );
    assert_eq!(
        IoConfig::memory_resident()
            .simulated_io_time(&report.stats.io)
            .as_nanos(),
        0
    );
}
