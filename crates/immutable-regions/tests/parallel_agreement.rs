//! Determinism-first agreement suite for the parallel execution layer.
//!
//! The contract of `BatchRegionComputation` (and of
//! `RegionComputation::compute_parallel`) is that parallel output is
//! *identical* to the sequential oracle — same regions, same boundary
//! perturbations, same per-region results — for every algorithm, every φ
//! level and every worker count. Scheduling must never leak into the
//! output: the merge order is fixed by dimension/query index, and each
//! dimension is solved from a private snapshot of the initial TA state.
//!
//! Seeded like the other property suites so failures reproduce exactly.

use immutable_regions::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A small random dataset with mixed sparsity (single-dimension, few-
/// dimension and dense tuples), same idiom as `cross_method_agreement`.
fn random_dataset(rng: &mut ChaCha8Rng, n: usize, dims: u32) -> Dataset {
    let mut builder = DatasetBuilder::new(dims);
    for _ in 0..n {
        let style: f64 = rng.gen();
        let pairs: Vec<(u32, f64)> = if style < 0.4 {
            vec![(rng.gen_range(0..dims), rng.gen_range(0.05..1.0))]
        } else if style < 0.7 {
            let a = rng.gen_range(0..dims);
            let mut b = rng.gen_range(0..dims);
            while b == a {
                b = rng.gen_range(0..dims);
            }
            vec![(a, rng.gen_range(0.05..1.0)), (b, rng.gen_range(0.05..1.0))]
        } else {
            (0..dims).map(|d| (d, rng.gen_range(0.01..1.0))).collect()
        };
        builder.push_pairs(pairs).unwrap();
    }
    builder.build()
}

fn random_query(rng: &mut ChaCha8Rng, dims: u32, qlen: usize, k: usize) -> QueryVector {
    let mut chosen = Vec::new();
    while chosen.len() < qlen {
        let d = rng.gen_range(0..dims);
        if !chosen.contains(&d) {
            chosen.push(d);
        }
    }
    QueryVector::new(chosen.into_iter().map(|d| (d, rng.gen_range(0.2..=1.0))), k).unwrap()
}

fn random_batch(rng: &mut ChaCha8Rng, dims: u32, queries: usize) -> Vec<QueryVector> {
    (0..queries)
        .map(|_| {
            let qlen = rng.gen_range(2..=dims.min(4)) as usize;
            let k = rng.gen_range(1..6);
            random_query(rng, dims, qlen, k)
        })
        .collect()
}

/// Asserts that two per-dimension region sets are *identical*: same
/// intervals (bitwise), same boundaries, same region sequences and results.
fn assert_dims_identical(expected: &[DimRegions], actual: &[DimRegions], context: &str) {
    assert_eq!(
        expected.len(),
        actual.len(),
        "{context}: dimension count differs"
    );
    for (e, a) in expected.iter().zip(actual) {
        assert_eq!(e, a, "{context}: dim {:?} differs", e.dim);
    }
}

/// The core satellite requirement: for each algorithm and φ level, the
/// batch API at 1, 2 and 8 workers produces regions identical to the
/// sequential `RegionComputation` oracle.
#[test]
fn batch_matches_sequential_oracle_for_all_algorithms_and_phi() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9A11E7);
    for phi in [0usize, 1, 3] {
        for algorithm in Algorithm::ALL {
            let dims = rng.gen_range(3..7);
            let n = rng.gen_range(40..120);
            let dataset = random_dataset(&mut rng, n, dims);
            let index = TopKIndex::build_in_memory(&dataset).unwrap();
            let queries = random_batch(&mut rng, dims, 5);
            let config = RegionConfig::with_phi(algorithm, phi);

            // Sequential oracle: the existing single-threaded entry point.
            let oracle: Vec<RegionReport> = queries
                .iter()
                .map(|q| {
                    RegionComputation::new(&index, q, config)
                        .unwrap()
                        .compute()
                        .unwrap()
                })
                .collect();

            for threads in [1usize, 2, 8] {
                let reports = BatchRegionComputation::new(&index, config)
                    .with_threads(threads)
                    .run(&queries)
                    .unwrap();
                assert_eq!(reports.len(), oracle.len());
                for (qi, (expected, actual)) in oracle.iter().zip(&reports).enumerate() {
                    let context = format!(
                        "{} phi={phi} threads={threads} query={qi}",
                        algorithm.name()
                    );
                    assert_dims_identical(&expected.dims, &actual.dims, &context);
                    // Batch workers run the plain sequential solve, so even
                    // the candidate counts match the oracle exactly.
                    assert_eq!(
                        expected.stats.evaluated_per_dim, actual.stats.evaluated_per_dim,
                        "{context}: evaluated candidates differ"
                    );
                    assert_eq!(
                        expected.stats.io.logical_reads, actual.stats.io.logical_reads,
                        "{context}: logical reads differ"
                    );
                }
            }
        }
    }
}

/// Composition-only mode goes through the envelope solver even for φ = 0;
/// the parallel path must agree there too.
#[test]
fn batch_matches_sequential_oracle_in_composition_only_mode() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC0517);
    for algorithm in [Algorithm::Scan, Algorithm::Cpt] {
        let dims = rng.gen_range(3..6);
        let dataset = random_dataset(&mut rng, 80, dims);
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        let queries = random_batch(&mut rng, dims, 4);
        let config = RegionConfig::flat(algorithm).composition_only();
        let oracle: Vec<RegionReport> = queries
            .iter()
            .map(|q| {
                RegionComputation::new(&index, q, config)
                    .unwrap()
                    .compute()
                    .unwrap()
            })
            .collect();
        for threads in [1usize, 2, 8] {
            let reports = BatchRegionComputation::new(&index, config)
                .with_threads(threads)
                .run(&queries)
                .unwrap();
            for (expected, actual) in oracle.iter().zip(&reports) {
                assert_dims_identical(
                    &expected.dims,
                    &actual.dims,
                    &format!("{} composition-only threads={threads}", algorithm.name()),
                );
            }
        }
    }
}

/// `compute_parallel` (per-dimension fan-out within one query) is
/// thread-count invariant *including its deterministic stats* — evaluated
/// candidates per dimension and logical reads never depend on scheduling.
#[test]
fn per_dimension_fanout_is_thread_count_invariant() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xD17_FA17);
    for algorithm in Algorithm::ALL {
        let dims = 6;
        let dataset = random_dataset(&mut rng, 150, dims);
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        let query = random_query(&mut rng, dims, 4, 5);
        let config = RegionConfig::with_phi(algorithm, 1);
        let computation = RegionComputation::new(&index, &query, config).unwrap();
        let baseline = computation.compute_parallel(1).unwrap();
        for threads in [2usize, 4, 8] {
            let report = computation.compute_parallel(threads).unwrap();
            assert_eq!(
                baseline.dims,
                report.dims,
                "{} threads={threads}",
                algorithm.name()
            );
            assert_eq!(
                baseline.stats.evaluated_per_dim,
                report.stats.evaluated_per_dim,
                "{} threads={threads}: evaluated candidates leaked scheduling",
                algorithm.name()
            );
            assert_eq!(
                baseline.stats.io.logical_reads,
                report.stats.io.logical_reads,
                "{} threads={threads}: logical reads leaked scheduling",
                algorithm.name()
            );
        }
    }
}

/// The top-k results themselves (not just the regions) must be identical
/// across the sequential and batch paths.
#[test]
fn batch_results_and_current_regions_match_sequential_topk() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x70B_B01);
    let dataset = random_dataset(&mut rng, 100, 5);
    let index = TopKIndex::build_in_memory(&dataset).unwrap();
    let queries = random_batch(&mut rng, 5, 6);
    let reports = BatchRegionComputation::new(&index, RegionConfig::default())
        .with_threads(4)
        .run(&queries)
        .unwrap();
    for (query, report) in queries.iter().zip(&reports) {
        let sequential = TaRun::execute_default(&index, query).unwrap();
        let expected = sequential.result().ids();
        for dim in &report.dims {
            assert_eq!(
                dim.current_result(),
                &expected[..],
                "current region of {:?} must hold the sequential top-k",
                dim.dim
            );
        }
    }
}
