//! Integration suite for the [`IrEngine`] façade:
//!
//! * typed error paths — malformed requests come back as the right
//!   [`EngineError`] variant, never a panic,
//! * batch parity — `IrEngine::query_batch` output equals the borrow-based
//!   sequential oracle (`RegionComputation::new` + `compute`) for every
//!   worker count, regions *and* deterministic counters,
//! * subscription soundness — a proptest sweep of weight perturbations
//!   inside and outside the reported region checks that
//!   `Subscription::is_immutable_under` always agrees with a fresh
//!   recompute.

use immutable_regions::prelude::*;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn build_dataset(seed: u64, n: usize, dims: u32) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut builder = DatasetBuilder::new(dims);
    for _ in 0..n {
        let mut pairs = Vec::new();
        for d in 0..dims {
            if rng.gen::<f64>() < 0.8 {
                pairs.push((d, rng.gen_range(0.01..1.0)));
            }
        }
        if pairs.is_empty() {
            pairs.push((rng.gen_range(0..dims), rng.gen_range(0.01..1.0)));
        }
        builder.push_pairs(pairs).unwrap();
    }
    builder.build()
}

fn build_queries(seed: u64, dims: u32, count: usize, k: usize) -> Vec<QueryVector> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5EED);
    (0..count)
        .map(|_| {
            let qlen = rng.gen_range(2..=dims.min(4)) as usize;
            let mut chosen = Vec::new();
            while chosen.len() < qlen {
                let d = rng.gen_range(0..dims);
                if !chosen.contains(&d) {
                    chosen.push(d);
                }
            }
            QueryVector::new(chosen.into_iter().map(|d| (d, rng.gen_range(0.1..=0.9))), k).unwrap()
        })
        .collect()
}

// ---------------------------------------------------------------- errors --

#[test]
fn empty_dataset_is_a_typed_error() {
    let err = IrEngine::builder()
        .dataset(DatasetBuilder::new(3).build())
        .build()
        .unwrap_err();
    assert!(matches!(err, EngineError::EmptyDataset), "{err}");
}

#[test]
fn missing_source_is_a_typed_error() {
    let err = IrEngine::builder().build().unwrap_err();
    assert!(matches!(err, EngineError::NoSource), "{err}");
}

#[test]
fn k_larger_than_dataset_is_a_typed_error() {
    let engine = IrEngine::builder()
        .dataset(Dataset::running_example()) // 4 tuples
        .build()
        .unwrap();
    let query = QueryVector::new([(0, 0.5)], 9).unwrap();
    let err = engine.query(&query).unwrap_err();
    match err {
        EngineError::KTooLarge { k, cardinality } => {
            assert_eq!(k, 9);
            assert_eq!(cardinality, 4);
        }
        other => panic!("expected KTooLarge, got {other}"),
    }
    // The same guard protects every call style.
    assert!(matches!(
        engine.query_batch(std::slice::from_ref(&query)),
        Err(EngineError::KTooLarge { .. })
    ));
    assert!(matches!(
        engine.subscribe(query),
        Err(EngineError::KTooLarge { .. })
    ));
}

#[test]
fn unindexed_dimension_is_a_typed_error() {
    let engine = IrEngine::builder()
        .dataset(Dataset::running_example()) // 2 dimensions
        .build()
        .unwrap();
    let query = QueryVector::new([(0, 0.5), (7, 0.5)], 2).unwrap();
    let err = engine.query(&query).unwrap_err();
    match err {
        EngineError::DimensionNotIndexed {
            dim,
            dimensionality,
        } => {
            assert_eq!(dim, 7);
            assert_eq!(dimensionality, 2);
        }
        other => panic!("expected DimensionNotIndexed, got {other}"),
    }
}

#[test]
fn zero_weight_query_is_a_typed_error() {
    let engine = IrEngine::builder()
        .dataset(Dataset::running_example())
        .build()
        .unwrap();
    let err = engine
        .query_pairs([(0u32, 0.0), (1u32, 0.0)], 2)
        .unwrap_err();
    assert!(matches!(err, EngineError::ZeroWeightQuery), "{err}");
    let err = engine.query_pairs(std::iter::empty(), 2).unwrap_err();
    assert!(matches!(err, EngineError::ZeroWeightQuery), "{err}");
}

/// Every robustness-relevant [`IrError`] variant crosses the engine
/// boundary without loss: the request-shaped ones become their own
/// [`EngineError`] variants, and the storage-failure ones ride through
/// [`EngineError::Core`] with payload, message and source chain intact.
#[test]
fn engine_error_maps_every_core_variant_without_loss() {
    use std::error::Error as _;

    // Request-shaped errors are lifted into dedicated variants.
    assert!(matches!(
        EngineError::from(IrError::InvalidK {
            k: 9,
            cardinality: 4
        }),
        EngineError::KTooLarge {
            k: 9,
            cardinality: 4
        }
    ));
    assert!(matches!(
        EngineError::from(IrError::UnknownDimension {
            dim: 7,
            dimensionality: 2
        }),
        EngineError::DimensionNotIndexed {
            dim: 7,
            dimensionality: 2
        }
    ));
    assert!(matches!(
        EngineError::from(IrError::EmptyQuery),
        EngineError::ZeroWeightQuery
    ));

    // Storage failures keep their exact typed payloads behind `Core`.
    let corruption = EngineError::from(IrError::Corruption {
        page: Some(3),
        detail: "checksum mismatch".to_string(),
    });
    assert!(matches!(
        &corruption,
        EngineError::Core(IrError::Corruption { page: Some(3), .. })
    ));
    assert!(corruption.to_string().contains("page 3"), "{corruption}");

    let panicked = EngineError::from(IrError::WorkerPanicked {
        job: "query 4".to_string(),
        message: "boom".to_string(),
    });
    assert!(matches!(
        &panicked,
        EngineError::Core(IrError::WorkerPanicked { .. })
    ));
    assert!(panicked.to_string().contains("query 4"), "{panicked}");

    let oob = EngineError::from(IrError::PageOutOfBounds {
        page: 9,
        num_pages: 3,
    });
    assert!(matches!(
        &oob,
        EngineError::Core(IrError::PageOutOfBounds {
            page: 9,
            num_pages: 3
        })
    ));

    // RetryExhausted keeps its source chain: EngineError -> IrError
    // (exhaustion) -> IrError (the underlying transient fault).
    let exhausted = EngineError::from(IrError::RetryExhausted {
        attempts: 3,
        source: Box::new(IrError::Io(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            "transient".to_string(),
        ))),
    });
    assert!(exhausted.to_string().contains("3 attempts"), "{exhausted}");
    let core = exhausted.source().expect("Core keeps a source");
    let inner = core.source().expect("RetryExhausted keeps its source");
    assert!(inner.to_string().contains("transient"), "{inner}");
}

#[test]
fn engine_error_display_is_informative() {
    let engine = IrEngine::builder()
        .dataset(Dataset::running_example())
        .build()
        .unwrap();
    let err = engine
        .query(&QueryVector::new([(0, 0.5)], 9).unwrap())
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains('9') && msg.contains('4'), "{msg}");
}

// ------------------------------------------------------------ batch parity --

/// The engine's batch path must reproduce the pre-refactor sequential
/// oracle — a plain `RegionComputation::new` + `compute` loop over the
/// borrow-based API — for every worker count: same regions, same
/// deterministic counters (evaluated candidates, logical reads, memory).
#[test]
fn batch_output_matches_borrowed_sequential_oracle_for_every_worker_count() {
    let dims = 5u32;
    let dataset = build_dataset(0xA11CE, 150, dims);
    let queries = build_queries(0xA11CE, dims, 8, 4);

    for config in [
        RegionConfig::flat(Algorithm::Cpt),
        RegionConfig::with_phi(Algorithm::Prune, 2),
        RegionConfig::flat(Algorithm::Scan).composition_only(),
    ] {
        // Pre-refactor oracle: hand-assembled index, borrowed lifetimes.
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        let oracle: Vec<RegionReport> = queries
            .iter()
            .map(|query| {
                let mut computation = RegionComputation::new(&index, query, config).unwrap();
                computation.compute().unwrap()
            })
            .collect();

        let engine = IrEngine::builder()
            .dataset(dataset.clone())
            .config(config)
            .build()
            .unwrap();
        for workers in [1usize, 2, 4, 8] {
            let reports = engine.with_threads(workers).query_batch(&queries).unwrap();
            assert_eq!(reports.len(), oracle.len());
            for (expected, got) in oracle.iter().zip(&reports) {
                assert_eq!(expected.dims, got.dims, "workers = {workers}");
                assert_eq!(
                    expected.stats.evaluated_per_dim, got.stats.evaluated_per_dim,
                    "workers = {workers}"
                );
                assert_eq!(
                    expected.stats.phase3_tuples, got.stats.phase3_tuples,
                    "workers = {workers}"
                );
                assert_eq!(
                    expected.stats.initial_candidates, got.stats.initial_candidates,
                    "workers = {workers}"
                );
                assert_eq!(
                    expected.stats.io.logical_reads, got.stats.io.logical_reads,
                    "workers = {workers}"
                );
                assert_eq!(
                    expected.stats.memory_footprint_bytes, got.stats.memory_footprint_bytes,
                    "workers = {workers}"
                );
            }
        }
    }
}

#[test]
fn single_query_matches_borrowed_path_exactly() {
    let dataset = Dataset::running_example();
    let query = QueryVector::running_example();
    let index = TopKIndex::build_in_memory(&dataset).unwrap();
    let mut low_level =
        RegionComputation::new(&index, &query, RegionConfig::flat(Algorithm::Cpt)).unwrap();
    let expected = low_level.compute().unwrap();

    let engine = IrEngine::builder()
        .dataset(dataset)
        .config(RegionConfig::flat(Algorithm::Cpt))
        .build()
        .unwrap();
    engine.cold_start();
    let got = engine.query(&query).unwrap();
    assert_eq!(expected.dims, got.dims);
    assert_eq!(
        expected.stats.evaluated_per_dim,
        got.stats.evaluated_per_dim
    );
}

// ----------------------------------------------------------- subscription --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12).with_seed(0x5AB5_C21B))]

    /// Sweep single-dimension weight perturbations both inside the reported
    /// immutable region and into the adjacent (φ = 1) regions:
    /// `is_immutable_under` must claim immutability exactly when a fresh
    /// recompute returns the cached ordered result.
    #[test]
    fn subscription_agrees_with_fresh_recompute(
        seed in 0u64..5_000,
        k in 1usize..5,
        t in 0.05f64..0.95,
    ) {
        let dims = 5u32;
        let dataset = build_dataset(seed, 120, dims);
        let engine = IrEngine::builder()
            .dataset(dataset)
            // φ = 1 so the report also names the exact result inside the
            // adjacent regions — the outside probes below land there.
            .config(RegionConfig::with_phi(Algorithm::Cpt, 1))
            .build()
            .unwrap();
        let query = build_queries(seed, dims, 1, k).pop().unwrap();
        let subscription = engine.subscribe(query.clone()).unwrap();
        let cached_ids = subscription.result().ids();

        for dim_regions in subscription.report().dims.clone() {
            let dim = dim_regions.dim;
            let immutable = dim_regions.immutable;

            // Inside probe: a point strictly within the immutable region.
            let delta = immutable.lo + t * (immutable.hi - immutable.lo);
            let shifted_weight = query.weight(dim) + delta;
            let clear_of_bounds = delta > immutable.lo + 1e-9
                && delta < immutable.hi - 1e-9
                && shifted_weight > 1e-9;
            if clear_of_bounds {
                let inside = query.with_weight_shift(dim, delta).unwrap();
                prop_assert!(
                    subscription.is_immutable_under(&inside),
                    "dim {dim:?}, delta {delta} inside {immutable:?}"
                );
                let fresh = engine.computation(&inside).unwrap();
                prop_assert_eq!(
                    fresh.result().ids(),
                    cached_ids.clone(),
                    "inside the region the fresh result must equal the cache"
                );
            }

            // Outside probes: the midpoint of each adjacent region. The
            // report records the exact result there, so the check is
            // epsilon-free: not immutable, and the fresh recompute returns
            // the adjacent region's result, not the cached one.
            for (i, region) in dim_regions.regions.iter().enumerate() {
                if i == dim_regions.current_region || region.width() < 1e-6 {
                    continue;
                }
                let delta = 0.5 * (region.delta_lo + region.delta_hi);
                let shifted_weight = query.weight(dim) + delta;
                if shifted_weight <= 1e-9 || shifted_weight >= 1.0 - 1e-9 {
                    continue;
                }
                let outside = query.with_weight_shift(dim, delta).unwrap();
                prop_assert!(
                    !subscription.is_immutable_under(&outside),
                    "dim {dim:?}, delta {delta} outside {immutable:?}"
                );
                let fresh = engine.computation(&outside).unwrap();
                prop_assert_eq!(
                    fresh.result().ids(),
                    region.result.clone(),
                    "adjacent region result must match the report"
                );
                prop_assert!(
                    fresh.result().ids() != cached_ids,
                    "crossing a boundary must change the ordered result"
                );
            }
        }
    }
}
