//! `φ > 0`: the one-off region sequences must match the exhaustive oracle
//! and the iterative re-evaluation baseline, for every algorithm.

use immutable_regions::prelude::*;
use ir_core::config::PerturbationMode;
use ir_core::iterative::compute_iterative;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_dataset(rng: &mut ChaCha8Rng, n: usize, dims: u32) -> Dataset {
    let mut builder = DatasetBuilder::new(dims);
    for _ in 0..n {
        let nnz = rng.gen_range(1..=dims);
        let mut chosen: Vec<u32> = (0..dims).collect();
        for i in (1..chosen.len()).rev() {
            chosen.swap(i, rng.gen_range(0..=i));
        }
        chosen.truncate(nnz as usize);
        let pairs: Vec<(u32, f64)> = chosen
            .into_iter()
            .map(|d| (d, rng.gen_range(0.02..1.0)))
            .collect();
        builder.push_pairs(pairs).unwrap();
    }
    builder.build()
}

#[test]
fn phi_regions_match_the_oracle_for_every_algorithm() {
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    for trial in 0..8 {
        let dims = rng.gen_range(3..6);
        let cardinality = rng.gen_range(25..70);
        let dataset = random_dataset(&mut rng, cardinality, dims);
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        let k = rng.gen_range(2..5);
        let qlen = 2usize;
        let mut chosen = Vec::new();
        while chosen.len() < qlen {
            let d = rng.gen_range(0..dims);
            if !chosen.contains(&d) {
                chosen.push(d);
            }
        }
        let query =
            QueryVector::new(chosen.iter().map(|&d| (d, rng.gen_range(0.3..=1.0))), k).unwrap();
        let phi = rng.gen_range(1..4usize);
        let oracle = ExhaustiveOracle::new(&dataset, query.clone());

        for algorithm in Algorithm::ALL {
            let mut computation =
                RegionComputation::new(&index, &query, RegionConfig::with_phi(algorithm, phi))
                    .unwrap();
            let report = computation.compute().unwrap();
            for dim_regions in &report.dims {
                let expected =
                    oracle.regions(dim_regions.dim, phi, PerturbationMode::WithReorderings);
                // The immutable region must match exactly.
                assert!(
                    dim_regions.immutable.approx_eq(&expected.immutable, 1e-9),
                    "trial {trial} {} φ={phi} dim {}: {:?} vs oracle {:?}",
                    algorithm.name(),
                    dim_regions.dim,
                    dim_regions.immutable,
                    expected.immutable
                );
                // Every region we report must agree with the oracle's region
                // at its midpoint (same boundaries and same ordered result).
                for region in &dim_regions.regions {
                    if region.delta_hi - region.delta_lo < 1e-9 {
                        continue;
                    }
                    let mid = 0.5 * (region.delta_lo + region.delta_hi);
                    let expected_result = oracle.topk_at(dim_regions.dim, mid);
                    assert_eq!(
                        region.result,
                        expected_result,
                        "trial {trial} {} φ={phi} dim {} region around {mid}",
                        algorithm.name(),
                        dim_regions.dim
                    );
                }
            }
        }
    }
}

#[test]
fn one_off_and_iterative_processing_agree() {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    for _ in 0..4 {
        let dims = 4;
        let dataset = random_dataset(&mut rng, 40, dims);
        let index = TopKIndex::build_in_memory(&dataset).unwrap();
        let query = QueryVector::new([(0, 0.7), (2, 0.5)], 3).unwrap();
        let phi = 2;

        let mut one_off =
            RegionComputation::new(&index, &query, RegionConfig::with_phi(Algorithm::Cpt, phi))
                .unwrap();
        let one_off_report = one_off.compute().unwrap();
        let iterative = compute_iterative(&index, &query, Algorithm::Cpt, phi).unwrap();

        for (a, b) in one_off_report.dims.iter().zip(&iterative.dims) {
            assert_eq!(a.dim, b.dim);
            // Compare the region boundaries (the iterative walk nudges by
            // 1e-9 per step, so allow a slightly looser tolerance).
            assert_eq!(a.regions.len(), b.regions.len(), "dim {:?}", a.dim);
            for (ra, rb) in a.regions.iter().zip(&b.regions) {
                assert!(
                    (ra.delta_lo - rb.delta_lo).abs() < 1e-6,
                    "dim {:?}: {} vs {}",
                    a.dim,
                    ra.delta_lo,
                    rb.delta_lo
                );
                assert!((ra.delta_hi - rb.delta_hi).abs() < 1e-6);
                assert_eq!(ra.result, rb.result);
            }
        }
    }
}

#[test]
fn phi_zero_and_flat_solver_agree() {
    // A φ = 1 computation restricted to its central region must equal the
    // φ = 0 computation (they use different solvers internally).
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let dataset = random_dataset(&mut rng, 80, 5);
    let index = TopKIndex::build_in_memory(&dataset).unwrap();
    let query = QueryVector::new([(0, 0.6), (1, 0.8), (3, 0.4)], 4).unwrap();
    for algorithm in Algorithm::ALL {
        let mut flat =
            RegionComputation::new(&index, &query, RegionConfig::flat(algorithm)).unwrap();
        let flat_report = flat.compute().unwrap();
        let mut phi =
            RegionComputation::new(&index, &query, RegionConfig::with_phi(algorithm, 1)).unwrap();
        let phi_report = phi.compute().unwrap();
        for (a, b) in flat_report.dims.iter().zip(&phi_report.dims) {
            assert!(
                a.immutable.approx_eq(&b.immutable, 1e-9),
                "{}: φ=0 {:?} vs φ=1 central {:?}",
                algorithm.name(),
                a.immutable,
                b.immutable
            );
        }
    }
}
