//! Fleet agreement properties: random drift streams over random fleets.
//!
//! Three invariants, proptest-driven:
//!
//! * **(a) agreement** — every answer the manager serves (local or
//!   recomputed) equals a fresh per-subscription recompute at the
//!   event's cumulative weights,
//! * **(b) conservation** — cache-hit and refresh counters sum to the
//!   number of ingested events, in the fleet totals, the per-member
//!   views, and the engine's shared health counters alike,
//! * **(c) fault containment** — a mid-stream injected device fault
//!   (reusing [`FaultPlan`]) surfaces as a typed error, leaves untouched
//!   subscriptions serving locally, and once the device heals the
//!   manager drains every deferred answer — still oracle-identical.

use immutable_regions::prelude::*;
use proptest::prelude::*;

/// Deterministic 160 × 5 dataset (the chaos-suite workload).
fn dataset() -> Dataset {
    let mut builder = DatasetBuilder::new(5);
    for i in 0..160u32 {
        let pairs: Vec<(u32, f64)> = (0..5u32)
            .map(|d| (d, (((i * 31 + d * 17) % 97) + 1) as f64 / 98.0))
            .collect();
        builder.push_pairs(pairs).unwrap();
    }
    builder.build()
}

fn build_engine(backend: &str, threads: usize, plan: Option<FaultPlan>) -> IrEngine {
    let dataset = dataset();
    let dir = tempfile::tempdir().unwrap();
    let storage = match backend {
        "mem" => StorageBackend::Memory,
        "file" => StorageBackend::Disk(dir.path().to_path_buf()),
        other => panic!("unknown backend {other}"),
    };
    let mut builder = IrEngine::builder()
        .dataset_ref(&dataset)
        .backend(storage)
        .pool_capacity(4)
        .threads(threads);
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan);
    }
    builder.build().unwrap()
}

/// A random fleet: 2–5 subscriptions, each over 2–3 distinct dimensions
/// of the 5 with weights in `[0.2, 1.0]` and its own `k`.
fn arb_fleet() -> impl Strategy<Value = Vec<(u64, QueryVector)>> {
    proptest::collection::vec(
        (
            proptest::collection::btree_map(0u32..5, 0.2f64..=1.0, 2..=3),
            3usize..=6,
        ),
        2..=5,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (weights, k))| (i as u64, QueryVector::new(weights, k).unwrap()))
            .collect()
    })
}

/// A random (valid) drift configuration.
fn arb_drift() -> impl Strategy<Value = DriftConfig> {
    (
        20usize..=60,
        0.0f64..=1.5,
        0.002f64..=0.03,
        0.1f64..=0.4,
        0usize..=6,
    )
        .prop_map(
            |(num_events, zipf_exponent, small_delta, large_delta, large_every)| DriftConfig {
                num_events,
                zipf_exponent,
                small_delta,
                large_delta,
                large_every,
            },
        )
}

/// Replays `events` one by one against a fresh-recompute oracle and
/// checks each answer byte for byte (property (a)). Panics on deviation.
fn assert_oracle_agreement(
    oracle: &IrEngine,
    fleet: &[(u64, QueryVector)],
    events: &[DriftEvent],
    answers: &[FleetAnswer],
) {
    assert_eq!(answers.len(), events.len());
    let mut current: Vec<QueryVector> = fleet.iter().map(|(_, q)| q.clone()).collect();
    for (event, answer) in events.iter().zip(answers) {
        let q = &mut current[event.sub as usize];
        *q = q.with_weight_shift(event.dim, event.delta).unwrap();
        assert_eq!(answer.sub, event.sub);
        let fresh = oracle.query(q).unwrap();
        assert_eq!(
            answer.result,
            fresh.current_result(),
            "seq {}: {:?} answer deviates from a fresh recompute",
            answer.seq,
            answer.kind
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10).with_seed(0xF1EE_7001))]

    /// Properties (a) and (b) on a fault-free fleet, across 1 and 2
    /// batch workers.
    #[test]
    fn random_streams_agree_with_fresh_recomputes(
        fleet in arb_fleet(),
        drift in arb_drift(),
        seed in 0u64..=u64::MAX,
        threads in 1usize..=2,
    ) {
        let stream = DriftStream::generate(&fleet, &drift, seed).unwrap();
        let oracle = build_engine("mem", 1, None);
        let engine = build_engine("mem", threads, None);
        let mut manager = SubscriptionManager::new(
            &engine,
            FleetConfig { max_batch: 4, ..FleetConfig::default() },
        ).unwrap();
        manager.admit_all(fleet.clone()).unwrap();

        let answers = manager.ingest(stream.events()).unwrap();

        // (a) every answer equals a fresh recompute.
        assert_oracle_agreement(&oracle, &fleet, stream.events(), &answers);

        // (b) hits + refreshes sum to the events, at every level.
        let stats = manager.stats();
        prop_assert_eq!(stats.events, stream.len() as u64);
        prop_assert_eq!(stats.local_answers + stats.recomputes, stats.events);
        let hits: u64 = manager.members().map(|m| m.cache_hits()).sum();
        let refreshes: u64 = manager.members().map(|m| m.refreshes()).sum();
        prop_assert_eq!(hits, stats.local_answers);
        prop_assert_eq!(refreshes, stats.recomputes);
        let locals = answers.iter().filter(|a| a.kind == AnswerKind::Local).count() as u64;
        prop_assert_eq!(locals, stats.local_answers);
        let health = engine.health();
        prop_assert_eq!(health.fleet_local_answers, stats.local_answers);
        prop_assert_eq!(health.fleet_recomputes, stats.recomputes);
        prop_assert_eq!(manager.pending_recomputes(), 0);
    }

    /// Property (c): a device outage injected mid-stream. The first
    /// `warmup` events are served on a healthy device; then the outage
    /// arms, every flush that touches the device fails with a typed
    /// error, untouched subscriptions still serve locally, and after the
    /// device heals the manager drains every deferred answer — all of
    /// them oracle-identical.
    ///
    /// The test keeps its own ledger of *ingested* events (the stream
    /// prefix the manager actually consumed, plus any mid-outage probe):
    /// event sequence numbers equal ledger positions, so the final
    /// replay is exact even though the outage interrupts `ingest`
    /// mid-slice.
    #[test]
    fn mid_stream_faults_leave_the_fleet_serviceable(
        fleet in arb_fleet(),
        drift in arb_drift(),
        seed in 0u64..=u64::MAX,
        warmup_frac in 0.2f64..0.8,
    ) {
        let stream = DriftStream::generate(&fleet, &drift, seed).unwrap();
        let events = stream.events();
        let warmup = ((events.len() as f64 * warmup_frac) as usize).clamp(1, events.len());
        let oracle = build_engine("mem", 1, None);

        // Built with a permanent outage, disarmed for the warmup — the
        // chaos-suite injector toggle — and armed mid-stream.
        let engine = build_engine("file", 2, Some(FaultPlan::device_outage(0, None)));
        let injector = engine.index().fault_injector().unwrap();
        injector.disarm();
        let mut manager = SubscriptionManager::new(
            &engine,
            FleetConfig { max_batch: 4, ..FleetConfig::default() },
        ).unwrap();
        manager.admit_all(fleet.clone()).unwrap();

        // Ledger: `ingested` mirrors every event the manager consumed, in
        // seq order; `stream_pos` counts how many came from the stream.
        let mut ingested: Vec<DriftEvent> = Vec::new();
        let mut stream_pos = 0usize;
        let mut answers: Vec<FleetAnswer> = Vec::new();
        macro_rules! track {
            ($chunk:expr, $from_stream:expr) => {{
                let newly = manager.stats().events as usize - ingested.len();
                ingested.extend_from_slice(&$chunk[..newly]);
                if $from_stream {
                    stream_pos += newly;
                }
            }};
        }

        let mut warm = manager.ingest(&events[..warmup]).unwrap();
        answers.append(&mut warm);
        track!(events[..warmup], true);

        // Outage: every recompute from here on dies at the device.
        injector.arm();
        engine.cold_start(); // drop cached pages so the outage bites
        let mut saw_fault = false;
        match manager.ingest(&events[warmup..]) {
            Ok(mut a) => answers.append(&mut a), // stream needed no recompute
            Err(EngineError::Core(_)) => saw_fault = true,
            Err(other) => prop_assert!(false, "untyped failure: {:?}", other),
        }
        track!(events[warmup..], true);

        if saw_fault {
            // The manager is intact: no subscription was lost.
            prop_assert_eq!(manager.len(), fleet.len());

            // An untouched subscription (still anchored where it stands)
            // keeps serving locally: a zero-drift event is answered
            // without the device, even while recomputes are impossible.
            // Its answer may be deferred behind pending recomputes (it
            // lands in the ready buffer), but the local-answer counter
            // proves it was served.
            let untouched: Option<(u64, DimId)> = manager
                .members()
                .find(|m| m.current() == m.anchor())
                .map(|m| (m.id(), m.anchor().dims().next().unwrap().0));
            if let Some((sub, dim)) = untouched {
                let local_before = manager.stats().local_answers;
                let probe = [DriftEvent { sub, dim, delta: 0.0 }];
                match manager.ingest(&probe) {
                    Ok(mut a) => answers.append(&mut a),
                    Err(EngineError::Core(_)) => {}
                    Err(other) => prop_assert!(false, "untyped probe failure: {:?}", other),
                }
                track!(probe, false);
                prop_assert_eq!(manager.stats().local_answers, local_before + 1);
            }
        }

        // Heal the device: the manager serves the rest of the stream and
        // drains every deferred answer.
        injector.disarm();
        let mut rest = manager.ingest(&events[stream_pos..]).unwrap();
        answers.append(&mut rest);
        track!(events[stream_pos..], true);
        let mut drained = manager.flush().unwrap();
        answers.append(&mut drained);
        prop_assert_eq!(stream_pos, events.len());
        prop_assert_eq!(manager.pending_recomputes(), 0);

        // (a) exact replay of the ledger: one answer per ingested event,
        // each equal to a fresh recompute at the cumulative weights.
        answers.sort_by_key(|a| a.seq);
        assert_oracle_agreement(&oracle, &fleet, &ingested, &answers);

        // (b) conservation holds across the fault.
        let stats = manager.stats();
        prop_assert_eq!(stats.events, ingested.len() as u64);
        prop_assert_eq!(stats.local_answers + stats.recomputes, stats.events);
    }
}
